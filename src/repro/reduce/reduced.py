"""Reduced systems and witness lifting.

A :class:`ReducedSystem` packages the outcome of a reduction pipeline:
the smaller :class:`~repro.system.model.TransitionSystem` a backend
should actually solve, plus the complete variable map — which latches
were kept, fixed to a constant, merged into a representative, or freed
(outside the cone of influence) — needed to translate between the two
worlds:

* **queries map down**: :meth:`map_expr` / :meth:`map_property`
  rewrite a predicate or :class:`~repro.spec.property.Property` over
  the original variables into one over the reduced variables;
* **witnesses lift back**: :meth:`lift` turns a SAT trace over the
  reduced system into a full-width trace over the original system —
  kept latches copy their recorded values, every removed latch is
  re-simulated from its reset value through its original next-state
  function, and pruned inputs are filled with a default — so nothing
  downstream (trace validation, shortening, reports) ever sees a
  partial state.

Lifting is sound because the cone-of-influence closure guarantees
removed latches never feed kept ones: the simulated values cannot
disturb the recorded cone behaviour, and the lifted path replays
against the original transition relation by construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..logic import expr as ex
from ..logic.expr import Expr
from ..spec.property import (And, Atom, Finally, Globally, Invariant, Next,
                             Not, Or, Property, Reachable, Release, Until)
from ..system.model import TransitionSystem
from ..system.trace import Trace
from .structure import FunctionalView

__all__ = ["ReducedSystem", "identity_reduction"]


class ReducedSystem:
    """A reduced transition system plus the map back to the original.

    Attributes
    ----------
    original, system:
        The full-width system and its reduction (``system is
        original`` for the identity reduction).
    kept_latches, kept_inputs:
        Surviving variables, in the original declaration order.
    fixed:
        Latches removed as constants: ``{latch: stuck-at value}``.
    merged:
        Latches removed as duplicates: ``{latch: representative}``.
    freed:
        Latches removed by the cone-of-influence pass (they exist and
        vary, but the query cannot observe them).
    """

    def __init__(self, original: TransitionSystem,
                 system: TransitionSystem,
                 view: Optional[FunctionalView],
                 kept_latches: List[str],
                 kept_inputs: List[str],
                 fixed: Dict[str, bool],
                 merged: Dict[str, str],
                 freed: List[str]) -> None:
        self.original = original
        self.system = system
        self.view = view
        self.kept_latches = list(kept_latches)
        self.kept_inputs = list(kept_inputs)
        self.fixed = dict(fixed)
        self.merged = dict(merged)
        self.freed = list(freed)
        self._kept_set = set(self.kept_latches)
        self._substitution: Dict[str, Expr] = {
            latch: ex.const(value) for latch, value in self.fixed.items()}
        self._substitution.update(
            {latch: ex.var(rep) for latch, rep in self.merged.items()})

    # ------------------------------------------------------------------
    @property
    def is_identity(self) -> bool:
        """True when nothing was removed or rewritten — callers can
        (and do) skip mapping and lifting entirely."""
        return self.system is self.original

    def cone_key(self) -> tuple:
        """Grouping key: reductions with equal keys produced the same
        reduced system, so their queries can share one unrolling.

        The reduced init/TR node identities participate (``Expr`` is
        hash-consed, so uid equality is structural equality): two
        reductions keeping the same variables but rewriting the logic
        differently — possible with property-structure-dependent
        custom transforms — never alias into one unrolling.
        """
        return (tuple(self.kept_latches), tuple(self.kept_inputs),
                self.system.init.uid, self.system.trans.uid)

    # ------------------------------------------------------------------
    # Mapping queries down
    # ------------------------------------------------------------------
    def map_expr(self, predicate: Expr) -> Expr:
        """Rewrite a state predicate over the reduced variables
        (constants folded in, duplicates renamed to their
        representative).  The predicate's remaining support must be
        inside the kept cone."""
        if self.is_identity:
            return predicate
        mapped = ex.substitute(predicate, self._substitution)
        stray = mapped.support() - self._kept_set
        if stray:
            raise ValueError(
                f"predicate depends on variables outside the reduced "
                f"cone: {sorted(stray)} (kept: {self.kept_latches})")
        return mapped

    def map_property(self, prop: Property) -> Property:
        """Rewrite every atom of a property via :meth:`map_expr`."""
        if self.is_identity:
            return prop
        return _map_property(prop, self.map_expr)

    # ------------------------------------------------------------------
    # Lifting witnesses back
    # ------------------------------------------------------------------
    def lift(self, trace: Trace) -> Trace:
        """Lift a reduced-system trace to a full-width original trace.

        Kept latches and inputs copy their recorded values; pruned
        inputs are filled with False; every removed latch (fixed,
        merged or freed) is re-simulated step by step from its reset
        value through its original next-state function.  The result
        replays against the original system — exactly what
        :meth:`repro.system.trace.Trace.validate` checks.
        """
        if self.is_identity:
            return trace
        assert self.view is not None
        original = self.original
        state0: Dict[str, bool] = {}
        for latch in original.state_vars:
            if latch in self._kept_set:
                state0[latch] = bool(trace.states[0][latch])
            else:
                state0[latch] = bool(self.view.resets.get(latch, False))
        states = [state0]
        inputs: List[Dict[str, bool]] = []
        for i in range(trace.length):
            step_inputs = {name: bool(trace.inputs[i].get(name, False))
                           for name in original.input_vars}
            env: Dict[str, bool] = dict(states[i])
            env.update(step_inputs)
            nxt: Dict[str, bool] = {}
            for latch in original.state_vars:
                if latch in self._kept_set:
                    nxt[latch] = bool(trace.states[i + 1][latch])
                else:
                    nxt[latch] = self.view.updates[latch].evaluate(env)
            states.append(nxt)
            inputs.append(step_inputs)
        return Trace(states, inputs)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, int]:
        """Before/after size counters (the ``repro reduce`` report)."""
        return {
            "latches_before": len(self.original.state_vars),
            "latches_after": len(self.system.state_vars),
            "inputs_before": len(self.original.input_vars),
            "inputs_after": len(self.system.input_vars),
            "trans_nodes_before": self.original.trans.size(),
            "trans_nodes_after": self.system.trans.size(),
            "fixed": len(self.fixed),
            "merged": len(self.merged),
            "freed": len(self.freed),
        }

    def __repr__(self) -> str:  # pragma: no cover
        if self.is_identity:
            return f"ReducedSystem({self.original.name!r}, identity)"
        return (f"ReducedSystem({self.original.name!r}, "
                f"{len(self.original.state_vars)}->"
                f"{len(self.kept_latches)} latches, "
                f"fixed={len(self.fixed)}, merged={len(self.merged)}, "
                f"freed={len(self.freed)})")


def identity_reduction(system: TransitionSystem) -> ReducedSystem:
    """The no-op reduction: same system, everything kept."""
    return ReducedSystem(system, system, None,
                         list(system.state_vars), list(system.input_vars),
                         {}, {}, [])


def _map_property(prop: Property, map_expr) -> Property:
    """Rebuild a property AST with every atom expression rewritten."""
    if isinstance(prop, Atom):
        return Atom(map_expr(prop.expr))
    if isinstance(prop, Invariant):
        return Invariant(map_expr(prop.expr))
    if isinstance(prop, Reachable):
        return Reachable(map_expr(prop.expr))
    if isinstance(prop, Not):
        return Not(_map_property(prop.arg, map_expr))
    if isinstance(prop, And):
        return And(*(_map_property(a, map_expr) for a in prop.args))
    if isinstance(prop, Or):
        return Or(*(_map_property(a, map_expr) for a in prop.args))
    if isinstance(prop, Next):
        return Next(_map_property(prop.arg, map_expr))
    if isinstance(prop, Finally):
        return Finally(_map_property(prop.arg, map_expr))
    if isinstance(prop, Globally):
        return Globally(_map_property(prop.arg, map_expr))
    if isinstance(prop, Until):
        return Until(_map_property(prop.left, map_expr),
                     _map_property(prop.right, map_expr))
    if isinstance(prop, Release):
        return Release(_map_property(prop.left, map_expr),
                       _map_property(prop.right, map_expr))
    raise TypeError(f"unknown property node {type(prop).__name__}")
