"""Structural views of transition systems for the reduction pipeline.

Every reduction in :mod:`repro.reduce` needs to see the transition
relation *per latch*: a next-state function for each state variable
plus a residue of invariant constraints.  Circuits compile to exactly
that shape (``TR = ⋀ v' <-> f_v  ∧  ⋀ constraints``, see
:meth:`repro.system.circuit.Circuit.trans_expr`), so
:class:`FunctionalView` recovers the decomposition by pattern-matching
the hash-consed ``Expr`` DAG.  Systems whose TR is not in this form
(e.g. after :meth:`~repro.system.model.TransitionSystem.with_self_loops`)
simply have no view — the pipeline then degrades to the identity
reduction rather than guessing.

The module also provides :func:`ternary_evaluate`, a three-valued
(Kleene) evaluator over ``Expr`` DAGs: ``None`` means *unknown* (the
X of ternary simulation).  Constant-latch detection runs a ternary
fixpoint with all inputs at X, so a latch reported constant really is
stuck at its reset value on every execution.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from ..logic import expr as ex
from ..logic.expr import Expr
from ..system.model import TransitionSystem, is_primed, unprimed

__all__ = ["FunctionalView", "ternary_evaluate", "conjuncts",
           "constant_latch_values", "support_cone"]


def conjuncts(root: Expr) -> List[Expr]:
    """Top-level conjuncts of an expression (``TRUE`` has none)."""
    if root.op == "and":
        return list(root.args)
    if root.is_true:
        return []
    return [root]


def _match_update(conjunct: Expr) -> Optional[Tuple[str, Expr]]:
    """Recognize a latch-defining conjunct ``v' <-> f``.

    ``mk_iff`` builds equivalences as ``not(xor(a, b))`` and folds
    constants, so three shapes occur: ``var(v')`` (next value stuck
    true), ``not(var(v'))`` (stuck false) and ``not(xor(u, w))`` with
    exactly one side a primed variable.  Returns ``(latch, update)``
    or None when the conjunct is not a definition.
    """
    if conjunct.op == "var" and is_primed(conjunct.name):
        return unprimed(conjunct.name), ex.TRUE
    if conjunct.op != "not":
        return None
    inner = conjunct.args[0]
    if inner.op == "var" and is_primed(inner.name):
        return unprimed(inner.name), ex.FALSE
    if inner.op != "xor":
        return None
    a, b = inner.args
    a_primed = a.op == "var" and is_primed(a.name)
    b_primed = b.op == "var" and is_primed(b.name)
    if a_primed == b_primed:        # neither side, or (impossibly) both
        return None
    target, update = (a, b) if a_primed else (b, a)
    if any(is_primed(name) for name in update.support()):
        return None                 # a relational coupling, not a function
    return unprimed(target.name), update


def _match_resets(init: Expr,
                  state_vars: List[str]) -> Optional[Dict[str, bool]]:
    """Per-latch reset values from a conjunction-of-literals init.

    Latches absent from the result have an unconstrained initial
    value.  Returns None when ``init`` has any other shape (the
    reduction pipeline then stays inert).
    """
    resets: Dict[str, bool] = {}
    for literal in conjuncts(init):
        if literal.op == "var":
            resets[literal.name] = True
        elif literal.op == "not" and literal.args[0].op == "var":
            resets[literal.args[0].name] = False
        else:
            return None
    if set(resets) - set(state_vars):
        return None
    return resets


class FunctionalView:
    """Per-latch decomposition of a transition system.

    Attributes
    ----------
    system:
        The system the view was extracted from.
    updates:
        ``{latch: next-state Expr}`` over current-state variables and
        inputs — one total function per latch.
    resets:
        ``{latch: bool}`` reset values; latches absent here have an
        unconstrained initial value.
    constraints:
        The TR conjuncts that are not latch definitions (invariant
        constraints over current-state variables and inputs).
    """

    def __init__(self, system: TransitionSystem,
                 updates: Dict[str, Expr],
                 resets: Dict[str, bool],
                 constraints: List[Expr]) -> None:
        self.system = system
        self.updates = updates
        self.resets = resets
        self.constraints = constraints

    @classmethod
    def from_system(cls, system: TransitionSystem
                    ) -> Optional["FunctionalView"]:
        """Extract the per-latch view, or None when TR/init do not
        decompose (relational TR, disjunctive init, ...)."""
        updates: Dict[str, Expr] = {}
        constraints: List[Expr] = []
        state = set(system.state_vars)
        for conjunct in conjuncts(system.trans):
            match = _match_update(conjunct)
            if match is not None and match[0] in state \
                    and match[0] not in updates:
                updates[match[0]] = match[1]
            else:
                constraints.append(conjunct)
        if set(updates) != state:
            return None
        for constraint in constraints:
            if any(is_primed(name) for name in constraint.support()):
                return None
        resets = _match_resets(system.init, system.state_vars)
        if resets is None:
            return None
        return cls(system, updates, resets, constraints)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"FunctionalView({self.system.name!r}, "
                f"latches={len(self.updates)}, "
                f"constraints={len(self.constraints)})")


def constant_latch_values(updates: Mapping[str, Expr],
                          resets: Mapping[str, bool]
                          ) -> Dict[str, Optional[bool]]:
    """The ternary constant fixpoint over per-latch update functions.

    Starts every latch at its reset value (X when absent from
    ``resets``) with all inputs at X, and re-evaluates updates
    three-valued until stable.  A latch still definite at the fixpoint
    is stuck at that value on *every* execution (X over-approximates
    all concrete choices); None marks a genuinely varying latch.
    Shared by :class:`repro.reduce.transforms.ConstantLatches` and the
    suite's probe selection.
    """
    values: Dict[str, Optional[bool]] = {
        latch: resets.get(latch) for latch in updates}
    changed = True
    while changed:
        changed = False
        for latch in updates:
            current = values[latch]
            if current is None:
                continue
            if ternary_evaluate(updates[latch], values) is not current:
                values[latch] = None
                changed = True
    return values


def support_cone(updates: Mapping[str, Expr],
                 seeds) -> set:
    """Transitive support closure over latch update functions.

    ``seeds`` is an iterable of latch names; the result is every latch
    whose value can influence a seed through the update functions
    (the cone of influence, before constraint seeding).  Shared by
    :class:`repro.reduce.transforms.ConeOfInfluence` and the suite's
    probe selection.
    """
    cone: set = set()
    frontier = [latch for latch in seeds if latch in updates]
    while frontier:
        latch = frontier.pop()
        if latch in cone:
            continue
        cone.add(latch)
        for dep in updates[latch].support():
            if dep in updates and dep not in cone:
                frontier.append(dep)
    return cone


def ternary_evaluate(root: Expr,
                     env: Mapping[str, Optional[bool]]) -> Optional[bool]:
    """Three-valued (Kleene) evaluation; ``None`` is the unknown X.

    Variables missing from ``env`` (or mapped to None) evaluate to X;
    X propagates unless the operator's known operands already decide
    the result (``False & X = False``, ``True | X = True``, ...).

    >>> a, b = ex.var("a"), ex.var("b")
    >>> ternary_evaluate(a & b, {"a": False})
    False
    >>> ternary_evaluate(a | b, {"a": False}) is None
    True
    """
    values: Dict[int, Optional[bool]] = {}
    for node in root.iter_dag():
        op = node.op
        if op == "const":
            out: Optional[bool] = node.value
        elif op == "var":
            out = env.get(node.name)
        else:
            child = [values[c.uid] for c in node.args]
            if op == "not":
                out = None if child[0] is None else not child[0]
            elif op == "and":
                if any(c is False for c in child):
                    out = False
                elif all(c is True for c in child):
                    out = True
                else:
                    out = None
            elif op == "or":
                if any(c is True for c in child):
                    out = True
                elif all(c is False for c in child):
                    out = False
                else:
                    out = None
            elif op == "xor":
                out = None if None in child else child[0] != child[1]
            elif op == "iff":
                out = None if None in child else child[0] == child[1]
            elif op == "ite":
                cond, then_v, else_v = child
                if cond is True:
                    out = then_v
                elif cond is False:
                    out = else_v
                elif then_v is not None and then_v == else_v:
                    out = then_v
                else:
                    out = None
            else:  # pragma: no cover - exhaustive over Expr ops
                raise ValueError(f"unknown operator {op!r}")
        values[node.uid] = out
    return values[root.uid]
