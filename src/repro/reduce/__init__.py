"""Model reduction: shrink the *system* before any encoding shrinks
the *formula*.

The paper's decision methods all fight formula growth — jSAT, the QBF
squaring encodings, the incremental frames.  This package attacks the
other factor of the product: the transition relation itself.  A
:class:`Pipeline` of sound structural :class:`Reduction` transforms
(constant-latch propagation, duplicate-latch sweeping, per-property
cone of influence, input pruning) turns a
:class:`~repro.system.model.TransitionSystem` into a
:class:`ReducedSystem` that any backend can solve in place of the
original; SAT witnesses are lifted back to full-width traces before
anything downstream sees them.

Entry points
------------
* :func:`reduce_system` / :func:`reduce_for_target` — one-shot
  reduction for a :class:`~repro.spec.property.Property` or a plain
  reachability target;
* :func:`default_pipeline` — the standard pass order;
* :func:`resolve_reduce` — normalizes the ``reduce="auto"|"off"``
  knob accepted by :class:`~repro.bmc.session.BmcSession`,
  :class:`~repro.spec.checker.PropertyChecker`,
  :func:`~repro.portfolio.race.race` and
  :func:`~repro.harness.runner.run_matrix`;
* :class:`ReducedSystem` — the reduced system plus the variable map
  and the :meth:`~ReducedSystem.lift` that makes witnesses full-width
  again.

Semantics
---------
Reductions are *verdict-preserving* for every loop-free bounded search
(the witness sets at each bound are in bijection through projection /
lifting).  For lasso-witness searches (``G``, ``U``/``R``, nested
temporal operators) they can only *strengthen*: every full-system
lasso projects onto the cone, and a cone lasso extends to a genuine
infinite path of the full system (freed latches simulate forward
forever), so a reduced run may certify a verdict at an **earlier**
bound than the full encoding — freed latches no longer delay loop
closure — but conclusive verdicts never disagree.

>>> from repro.logic import expr as ex
>>> from repro.models import counter
>>> from repro.reduce import reduce_for_target
>>> system, final, depth = counter.make(4, 9)
>>> rs = reduce_for_target(system, ex.var("c1"))
>>> rs.kept_latches                # c1 only needs c0 and itself
['c0', 'c1']
"""

from .reduced import ReducedSystem, identity_reduction
from .structure import FunctionalView, ternary_evaluate
from .transforms import (REDUCE_MODES, ConeOfInfluence, ConstantLatches,
                         DuplicateLatches, InputPruning, Pipeline, Reduction,
                         ReductionState, default_pipeline, reduce_for_target,
                         reduce_system, resolve_reduce)

__all__ = [
    "Reduction", "ReductionState", "Pipeline",
    "ConstantLatches", "DuplicateLatches", "ConeOfInfluence",
    "InputPruning",
    "ReducedSystem", "identity_reduction",
    "FunctionalView", "ternary_evaluate",
    "default_pipeline", "reduce_system", "reduce_for_target",
    "resolve_reduce", "REDUCE_MODES",
]
