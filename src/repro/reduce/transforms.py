"""The reduction transforms and the pipeline that runs them.

Each :class:`Reduction` is a sound structural transform over a
:class:`ReductionState` — a mutable per-latch view (updates, resets,
constraints, the query property) threaded through the pipeline:

* :class:`ConstantLatches` — ternary simulation with all inputs at X:
  latches stuck at their reset value on every execution are folded to
  constants everywhere they occur;
* :class:`DuplicateLatches` — partition refinement over structurally
  hashed next-state functions: latches with equal resets whose updates
  coincide under the partition's representative map are provably
  equivalent and merged (SNIPPETS' ``signature`` sweeping, done on the
  hash-consed ``Expr`` DAG so "same function" is pointer equality);
* :class:`ConeOfInfluence` — transitive support closure seeded from
  the property's atoms *and every constraint* (a constraint restricts
  all paths, so its cone must survive); latches outside the closure
  cannot influence the query and are freed;
* :class:`InputPruning` — inputs read by no surviving update or
  constraint are dropped (witness lifting refills them).

Soundness note: every transform preserves the query's verdict at
every bound, because removed latches either provably never change
(constants), provably track a kept twin (duplicates), or provably
cannot be observed by the property or any constraint (cone).  Witness
traces are lifted back and replay-validated against the *original*
system, so an unsound reduction cannot survive the debug checks.
"""

from __future__ import annotations

import logging
from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..logic import expr as ex
from ..logic.expr import Expr
from ..spec.property import Property, as_property, support
from ..system.model import TransitionSystem, primed
from ..telemetry.metrics import current_metrics
from ..telemetry.trace import current_tracer
from .reduced import ReducedSystem, identity_reduction, _map_property
from .structure import (FunctionalView, constant_latch_values,
                        support_cone)

__all__ = ["Reduction", "ReductionState", "ConstantLatches",
           "DuplicateLatches", "ConeOfInfluence", "InputPruning",
           "Pipeline", "default_pipeline", "reduce_system",
           "reduce_for_target", "resolve_reduce", "REDUCE_MODES"]

#: String knob values accepted everywhere a ``reduce=`` argument is.
REDUCE_MODES = ("auto", "off")

logger = logging.getLogger(__name__)


class ReductionState:
    """Mutable working state of one pipeline run.

    Holds the surviving latches/inputs with their (progressively
    rewritten) updates, resets and constraints, the query property
    mapped along, and the accumulated variable map (``fixed`` /
    ``merged`` / ``freed``) that :meth:`build` bakes into the final
    :class:`ReducedSystem`.
    """

    def __init__(self, view: FunctionalView, prop: Property) -> None:
        self.view = view
        self.latches: List[str] = list(view.system.state_vars)
        self.inputs: List[str] = list(view.system.input_vars)
        self.updates: Dict[str, Expr] = dict(view.updates)
        self.resets: Dict[str, bool] = dict(view.resets)
        self.constraints: List[Expr] = list(view.constraints)
        self.prop = prop
        self.fixed: Dict[str, bool] = {}
        self.merged: Dict[str, str] = {}
        self.freed: List[str] = []

    # ------------------------------------------------------------------
    def substitute(self, mapping: Dict[str, Expr]) -> None:
        """Apply a variable substitution to every surviving formula."""
        self.updates = {latch: ex.substitute(update, mapping)
                        for latch, update in self.updates.items()}
        self.constraints = [ex.substitute(c, mapping)
                            for c in self.constraints]
        self.prop = _map_property(
            self.prop, lambda e: ex.substitute(e, mapping))

    def drop_latches(self, removed: Sequence[str]) -> None:
        """Remove latches from the surviving set (map entries are the
        caller's responsibility)."""
        gone = set(removed)
        self.latches = [v for v in self.latches if v not in gone]
        for latch in gone:
            self.updates.pop(latch, None)
            self.resets.pop(latch, None)

    # ------------------------------------------------------------------
    def build(self) -> ReducedSystem:
        """Bake the state into a :class:`ReducedSystem`.

        A run that changed nothing returns the identity reduction —
        the *original* system object — so an all-kept cone is a
        guaranteed no-op, never a re-encoded pessimization.  "Changed
        nothing" is judged structurally, not by the removal maps:
        hash-consing makes a true no-op rebuild pointer-identical to
        the original init/TR, so a custom transform that rewrites
        updates or constraints without removing a variable still gets
        its rewritten system solved.
        """
        original = self.view.system
        init = ex.conjoin(
            (ex.var(v) if self.resets[v] else ex.mk_not(ex.var(v)))
            for v in self.latches if v in self.resets)
        trans = ex.conjoin(
            [ex.mk_iff(ex.var(primed(v)), self.updates[v])
             for v in self.latches] + self.constraints)
        untouched = (not self.fixed and not self.merged and not self.freed
                     and self.latches == list(original.state_vars)
                     and self.inputs == list(original.input_vars)
                     and init is original.init
                     and trans is original.trans)
        if untouched:
            return identity_reduction(original)
        reduced = TransitionSystem(
            state_vars=list(self.latches), init=init, trans=trans,
            input_vars=list(self.inputs),
            name=f"{original.name}#reduced")
        return ReducedSystem(original, reduced, self.view,
                             self.latches, self.inputs,
                             self.fixed, self.merged, self.freed)


# ----------------------------------------------------------------------
class Reduction(ABC):
    """One sound transform step of the reduction pipeline."""

    name = "?"

    #: True when the transform's outcome depends on the property only
    #: through its atom *support* (which variables it observes), never
    #: its temporal structure.  Every built-in transform qualifies, so
    #: callers may memoize pipeline runs per support set; custom
    #: subclasses that specialize on the property AST must leave this
    #: False (the conservative default) to stay cache-safe.
    support_determined = False

    @abstractmethod
    def apply(self, state: ReductionState) -> None:
        """Transform ``state`` in place."""

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}()"


class ConstantLatches(Reduction):
    """Fold latches stuck at their reset value under ternary simulation.

    The fixpoint starts every latch at its reset value (X when
    unconstrained) and every input at X, then repeatedly re-evaluates
    each update three-valued; a latch whose image ever disagrees with
    its current value falls to X.  Latches still definite at the
    fixpoint are constant on *every* execution (ternary X
    over-approximates all concrete input choices), so substituting the
    constant is verdict-preserving.
    """

    name = "constant-latches"
    support_determined = True

    def apply(self, state: ReductionState) -> None:
        """Run the ternary fixpoint and fold the surviving constants."""
        values = constant_latch_values(state.updates, state.resets)
        fixed = {latch: value for latch, value in values.items()
                 if value is not None}
        if not fixed:
            return
        state.fixed.update(fixed)
        state.drop_latches(list(fixed))
        state.substitute({latch: ex.const(value)
                          for latch, value in fixed.items()})


class DuplicateLatches(Reduction):
    """Merge provably equivalent latches by partition refinement.

    Latches with equal (defined) reset values start in one class;
    each round rewrites every update with the current class
    representatives and re-keys the class by the resulting hash-consed
    expression — structurally identical updates become pointer-equal
    — until the partition is stable.  Classmates then provably carry
    the same value in every state, so all but the representative are
    renamed away.
    """

    name = "duplicate-latches"
    support_determined = True

    def apply(self, state: ReductionState) -> None:
        """Refine the latch partition to a fixpoint and merge classes."""
        classes: Dict[str, Tuple] = {}
        for latch in state.latches:
            reset = state.resets.get(latch)
            if reset is None:                   # independent free init
                classes[latch] = ("self", latch)
            else:
                classes[latch] = ("reset", reset)
        while True:
            reps: Dict[Tuple, str] = {}
            for latch in state.latches:         # first-in-order rep
                reps.setdefault(classes[latch], latch)
            mapping = {latch: ex.var(reps[classes[latch]])
                       for latch in state.latches}
            refined: Dict[str, Tuple] = {}
            for latch in state.latches:
                if classes[latch][0] == "self":
                    refined[latch] = classes[latch]
                else:
                    signature = ex.substitute(state.updates[latch], mapping)
                    refined[latch] = (classes[latch], signature.uid)
            if _partition(refined) == _partition(classes):
                break
            classes = refined
        reps = {}
        for latch in state.latches:
            reps.setdefault(classes[latch], latch)
        merged = {latch: reps[classes[latch]] for latch in state.latches
                  if reps[classes[latch]] != latch}
        if not merged:
            return
        state.merged.update(merged)
        state.drop_latches(list(merged))
        state.substitute({latch: ex.var(rep)
                          for latch, rep in merged.items()})


def _partition(classes: Dict[str, Tuple]) -> Set[frozenset]:
    groups: Dict[Tuple, Set[str]] = {}
    for latch, key in classes.items():
        groups.setdefault(key, set()).add(latch)
    return {frozenset(members) for members in groups.values()}


class ConeOfInfluence(Reduction):
    """Free every latch the query provably cannot observe.

    The closure is seeded from the property's atom support *and* from
    every constraint's support (constraints restrict all paths — e.g.
    a globally-false constraint empties the reachable set — so their
    cone must survive for the reduction to stay verdict-preserving),
    then saturated through update-function supports.
    """

    name = "cone-of-influence"
    support_determined = True

    def apply(self, state: ReductionState) -> None:
        """Saturate the support closure and free everything outside."""
        latch_set = set(state.latches)
        seed = set(support(state.prop)) & latch_set
        for constraint in state.constraints:
            seed |= constraint.support() & latch_set
        cone = support_cone(state.updates, seed)
        freed = [latch for latch in state.latches if latch not in cone]
        if not freed:
            return
        state.freed.extend(freed)
        state.drop_latches(freed)


class InputPruning(Reduction):
    """Drop inputs no surviving update or constraint reads.

    Pruned inputs reappear (with a default value) when witnesses are
    lifted, so downstream consumers still see full-width traces.
    """

    name = "input-pruning"
    support_determined = True

    def apply(self, state: ReductionState) -> None:
        """Drop inputs outside every surviving support set."""
        used: Set[str] = set()
        for latch in state.latches:
            used |= state.updates[latch].support()
        for constraint in state.constraints:
            used |= constraint.support()
        state.inputs = [name for name in state.inputs if name in used]


# ----------------------------------------------------------------------
class Pipeline:
    """An ordered list of reductions applied per query.

    ``reduce`` extracts the per-latch view (or bails to the identity
    reduction when the system is not functional), runs every transform
    and bakes the result.

    >>> from repro.models import counter
    >>> from repro.spec import Reachable
    >>> system, final, depth = counter.make(4, 9)
    >>> rs = default_pipeline().reduce(system, Reachable(ex.var("c0")))
    >>> rs.kept_latches                      # c0 only feeds on itself
    ['c0']
    """

    def __init__(self, reductions: Sequence[Reduction]) -> None:
        self.reductions = list(reductions)
        for reduction in self.reductions:
            if not isinstance(reduction, Reduction):
                raise TypeError(f"Pipeline expects Reduction instances, "
                                f"got {type(reduction).__name__}")

    @property
    def support_determined(self) -> bool:
        """Whether every pass is determined by the property's support
        alone — the precondition for memoizing runs per support set
        (see :meth:`repro.spec.checker.PropertyChecker._cone_for`)."""
        return all(r.support_determined for r in self.reductions)

    def reduce(self, system: TransitionSystem,
               prop: Union[Property, Expr]) -> ReducedSystem:
        """Reduce ``system`` for the single query ``prop``."""
        tracer = current_tracer()
        with tracer.span("reduce.pipeline", system=system.name) as sp:
            view = FunctionalView.from_system(system)
            if view is None:
                sp.set(skipped="not-functional")
                return identity_reduction(system)
            state = ReductionState(view, as_property(prop))
            total_before = len(state.latches)
            for reduction in self.reductions:
                before = len(state.latches)
                with tracer.span("reduce." + reduction.name) as stage:
                    reduction.apply(state)
                    after = len(state.latches)
                    stage.set(latches_before=before, latches_after=after)
                logger.debug("reduce.%s: %d -> %d latches",
                             reduction.name, before, after)
            reduced = state.build()
            sp.set(latches_before=total_before,
                   cone=len(reduced.kept_latches))
        current_metrics().inc("reduce.latches_removed",
                              total_before - len(reduced.kept_latches))
        return reduced

    def __repr__(self) -> str:  # pragma: no cover
        return f"Pipeline({[r.name for r in self.reductions]})"


def default_pipeline() -> Pipeline:
    """The standard pass order: constants, duplicates, cone, inputs."""
    return Pipeline([ConstantLatches(), DuplicateLatches(),
                     ConeOfInfluence(), InputPruning()])


def reduce_system(system: TransitionSystem, prop: Union[Property, Expr],
                  pipeline: Optional[Pipeline] = None) -> ReducedSystem:
    """Reduce ``system`` for ``prop`` (default pipeline when None)."""
    return (pipeline or default_pipeline()).reduce(system, prop)


def reduce_for_target(system: TransitionSystem, final: Expr,
                      pipeline: Optional[Pipeline] = None) -> ReducedSystem:
    """Reduce for a plain reachability target (the backend query)."""
    from ..spec.property import Reachable
    return reduce_system(system, Reachable(final), pipeline)


def resolve_reduce(knob: Union[str, Pipeline, None]
                   ) -> Optional[Pipeline]:
    """Normalize the ``reduce=`` knob accepted across the stack.

    ``"auto"`` → the default pipeline, ``"off"`` / None → no
    reduction, a :class:`Pipeline` instance → itself.
    """
    if knob is None or knob == "off":
        return None
    if knob == "auto":
        return default_pipeline()
    if isinstance(knob, Pipeline):
        return knob
    raise ValueError(f"reduce must be 'auto', 'off' or a Pipeline, "
                     f"got {knob!r}")
