"""CNF-level preprocessing.

Light, solver-independent simplifications used by the BMC encoders to
shrink formulae before handing them to a solver:

* unit propagation to fixpoint,
* pure-literal elimination,
* (forward) subsumption on a bounded clause length.

All routines are pure: they take and return :class:`repro.logic.cnf.CNF`
objects plus enough bookkeeping for the caller to map models back.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .cnf import CNF, Clause

__all__ = ["propagate_units", "pure_literals", "subsume", "simplify_cnf",
           "SimplifyResult"]


class SimplifyResult:
    """Outcome of :func:`simplify_cnf`.

    Attributes
    ----------
    cnf:
        The simplified formula (same variable numbering).
    forced:
        Literals fixed by the preprocessor (units and pure literals).
        Any model of ``cnf`` extended with ``forced`` is a model of the
        original formula.
    unsat:
        True if preprocessing already refuted the formula.
    """

    def __init__(self, cnf: CNF, forced: Dict[int, bool], unsat: bool) -> None:
        self.cnf = cnf
        self.forced = forced
        self.unsat = unsat

    def __repr__(self) -> str:  # pragma: no cover
        return (f"SimplifyResult(unsat={self.unsat}, forced={len(self.forced)},"
                f" clauses={len(self.cnf.clauses)})")


def propagate_units(cnf: CNF) -> Tuple[Optional[CNF], Dict[int, bool]]:
    """Unit propagation to fixpoint.

    Returns ``(simplified, assignment)``; ``simplified`` is None when a
    conflict is found.  The assignment maps var -> bool for all literals
    forced by propagation.
    """
    assignment: Dict[int, bool] = {}
    clauses: List[Clause] = list(cnf.clauses)
    changed = True
    while changed:
        changed = False
        next_clauses: List[Clause] = []
        for clause in clauses:
            lits: List[int] = []
            satisfied = False
            for lit in clause:
                val = assignment.get(abs(lit))
                if val is None:
                    lits.append(lit)
                elif val == (lit > 0):
                    satisfied = True
                    break
            if satisfied:
                continue
            if not lits:
                return None, assignment
            if len(lits) == 1:
                lit = lits[0]
                prev = assignment.get(abs(lit))
                if prev is not None and prev != (lit > 0):
                    return None, assignment
                assignment[abs(lit)] = lit > 0
                changed = True
            else:
                next_clauses.append(tuple(lits))
        clauses = next_clauses
    out = CNF(cnf.num_vars)
    out.clauses = clauses
    return out, assignment


def pure_literals(cnf: CNF) -> Dict[int, bool]:
    """Variables occurring in only one phase, mapped to that phase."""
    phase: Dict[int, int] = {}
    for clause in cnf.clauses:
        for lit in clause:
            v = abs(lit)
            s = 1 if lit > 0 else -1
            prev = phase.get(v)
            if prev is None:
                phase[v] = s
            elif prev != s:
                phase[v] = 0
    return {v: s > 0 for v, s in phase.items() if s != 0}


def subsume(cnf: CNF, max_len: int = 8) -> CNF:
    """Remove clauses subsumed by another (shorter or equal) clause.

    Only clauses of length <= ``max_len`` act as subsumers, keeping the
    pass near-linear on the BMC formulae we generate.
    """
    by_len = sorted(range(len(cnf.clauses)), key=lambda i: len(cnf.clauses[i]))
    kept: List[Clause] = []
    subsumer_sets: List[frozenset[int]] = []
    occur: Dict[int, List[int]] = {}
    removed = 0
    for idx in by_len:
        clause = cnf.clauses[idx]
        cset = frozenset(clause)
        # A subsumer is a subset of this clause, so it occurs in the
        # occurrence list of at least one of this clause's literals.
        subsumed = False
        checked: set[int] = set()
        for lit in clause:
            for j in occur.get(lit, ()):
                if j in checked:
                    continue
                checked.add(j)
                if subsumer_sets[j] <= cset:
                    subsumed = True
                    break
            if subsumed:
                break
        if subsumed:
            removed += 1
            continue
        kept.append(clause)
        if len(clause) <= max_len:
            pos = len(subsumer_sets)
            subsumer_sets.append(cset)
            for lit in clause:
                occur.setdefault(lit, []).append(pos)
    out = CNF(cnf.num_vars)
    out.clauses = kept
    return out


def simplify_cnf(cnf: CNF, rounds: int = 3) -> SimplifyResult:
    """Run unit propagation + pure literals + subsumption to quiescence."""
    forced: Dict[int, bool] = {}
    current = cnf
    for _ in range(rounds):
        simplified, units = propagate_units(current)
        forced.update(units)
        if simplified is None:
            return SimplifyResult(CNF(cnf.num_vars), forced, unsat=True)
        pures = pure_literals(simplified)
        if not units and not pures:
            current = simplified
            break
        for v, val in pures.items():
            forced.setdefault(v, val)
        if pures:
            reduced = CNF(simplified.num_vars)
            for clause in simplified.clauses:
                if not any(pures.get(abs(l)) == (l > 0) for l in clause):
                    reduced.clauses.append(clause)
            current = reduced
        else:
            current = simplified
    current = subsume(current)
    return SimplifyResult(current, forced, unsat=False)
