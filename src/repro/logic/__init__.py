"""Boolean reasoning substrate: expressions, CNF, Tseitin, DIMACS, AIG."""

from .cnf import CNF, VarPool
from .dimacs import parse_dimacs, parse_qdimacs, write_dimacs, write_qdimacs
from .expr import (
    FALSE,
    TRUE,
    Expr,
    conjoin,
    const,
    disjoin,
    equal_vectors,
    mk_and,
    mk_iff,
    mk_implies,
    mk_ite,
    mk_not,
    mk_or,
    mk_xor,
    rename_vars,
    substitute,
    var,
)
from .tseitin import TseitinEncoder, encode_expr, expr_to_cnf

__all__ = [
    "CNF",
    "VarPool",
    "Expr",
    "TRUE",
    "FALSE",
    "var",
    "const",
    "mk_and",
    "mk_or",
    "mk_not",
    "mk_xor",
    "mk_iff",
    "mk_implies",
    "mk_ite",
    "conjoin",
    "disjoin",
    "equal_vectors",
    "substitute",
    "rename_vars",
    "TseitinEncoder",
    "encode_expr",
    "expr_to_cnf",
    "parse_dimacs",
    "write_dimacs",
    "parse_qdimacs",
    "write_qdimacs",
]
