"""CNF formula container and variable pool.

Literals follow the DIMACS convention: variables are positive integers
``1..num_vars`` and a literal is ``v`` (positive phase) or ``-v``
(negative phase).  Clauses are stored as tuples of literals.

:class:`VarPool` hands out fresh variables and remembers name->variable
bindings so that encoders (:mod:`repro.logic.tseitin`, the BMC unrollers)
can translate between the named world of :class:`repro.logic.expr.Expr`
and the integer world of the solvers.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

__all__ = ["Clause", "CNF", "VarPool", "neg", "lit_var", "lit_sign"]

Clause = Tuple[int, ...]


def neg(lit: int) -> int:
    """Negate a DIMACS literal."""
    return -lit


def lit_var(lit: int) -> int:
    """Variable index of a literal."""
    return abs(lit)


def lit_sign(lit: int) -> bool:
    """True iff the literal is positive."""
    return lit > 0


class VarPool:
    """Allocator of fresh CNF variables with optional symbolic names.

    >>> pool = VarPool()
    >>> pool.named("x")
    1
    >>> pool.named("x")       # idempotent
    1
    >>> pool.fresh("aux")     # always a new variable
    2
    """

    def __init__(self) -> None:
        self._next = 1
        self._by_name: Dict[str, int] = {}
        self._names: Dict[int, str] = {}

    @property
    def num_vars(self) -> int:
        """Highest variable index allocated so far."""
        return self._next - 1

    def fresh(self, hint: str | None = None) -> int:
        """Allocate a brand-new variable; ``hint`` is for diagnostics only."""
        v = self._next
        self._next += 1
        if hint is not None:
            self._names[v] = hint
        return v

    def named(self, name: str) -> int:
        """Return the variable bound to ``name``, allocating on first use."""
        v = self._by_name.get(name)
        if v is None:
            v = self.fresh(name)
            self._by_name[name] = v
        return v

    def lookup(self, name: str) -> int | None:
        """Return the variable bound to ``name`` or None."""
        return self._by_name.get(name)

    def name_of(self, v: int) -> str | None:
        """Return the diagnostic name of variable ``v``, if any."""
        return self._names.get(v)

    def bindings(self) -> Mapping[str, int]:
        """Read-only view of the name -> variable map."""
        return dict(self._by_name)

    def reserve(self, count: int) -> List[int]:
        """Allocate ``count`` consecutive fresh variables."""
        return [self.fresh() for _ in range(count)]


class CNF:
    """A propositional formula in conjunctive normal form.

    The container normalizes clauses on insertion: duplicate literals are
    removed and tautological clauses (containing ``l`` and ``-l``) are
    dropped.  An empty clause is recorded and makes the formula trivially
    unsatisfiable (``has_empty_clause``).
    """

    def __init__(self, num_vars: int = 0) -> None:
        self.clauses: List[Clause] = []
        self.num_vars = num_vars
        self.has_empty_clause = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        """Allocate and return a fresh variable index."""
        self.num_vars += 1
        return self.num_vars

    def _register(self, lits: Iterable[int]) -> Clause | None:
        seen: set[int] = set()
        out: List[int] = []
        for lit in lits:
            if not isinstance(lit, int) or lit == 0:
                raise ValueError(f"invalid literal {lit!r}")
            if -lit in seen:
                return None               # tautology
            if lit in seen:
                continue
            seen.add(lit)
            out.append(lit)
            v = abs(lit)
            if v > self.num_vars:
                self.num_vars = v
        return tuple(out)

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause; returns False iff it was a dropped tautology."""
        clause = self._register(lits)
        if clause is None:
            return False
        if not clause:
            self.has_empty_clause = True
        self.clauses.append(clause)
        return True

    def add_clauses(self, clause_list: Iterable[Iterable[int]]) -> None:
        """Add several clauses."""
        for lits in clause_list:
            self.add_clause(lits)

    def add_unit(self, lit: int) -> None:
        """Add a unit clause."""
        self.add_clause((lit,))

    def extend(self, other: "CNF") -> None:
        """Append all clauses of ``other`` (same variable numbering)."""
        self.num_vars = max(self.num_vars, other.num_vars)
        self.clauses.extend(other.clauses)
        self.has_empty_clause = self.has_empty_clause or other.has_empty_clause

    def copy(self) -> "CNF":
        """Shallow copy (clauses are immutable tuples, so this is safe)."""
        dup = CNF(self.num_vars)
        dup.clauses = list(self.clauses)
        dup.has_empty_clause = self.has_empty_clause
        return dup

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.clauses)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self.clauses)

    @property
    def num_literals(self) -> int:
        """Total literal occurrences — the paper's memory-footprint proxy."""
        return sum(len(c) for c in self.clauses)

    def evaluate(self, assignment: Mapping[int, bool] | Sequence[bool]) -> bool:
        """Evaluate under a total assignment.

        ``assignment`` is either a mapping var->bool or a sequence indexed
        by var (index 0 unused).
        """
        if isinstance(assignment, Mapping):
            def value(v: int) -> bool:
                return bool(assignment[v])
        else:
            def value(v: int) -> bool:
                return bool(assignment[v])

        for clause in self.clauses:
            if not any(value(abs(l)) == (l > 0) for l in clause):
                return False
        return True

    def variables(self) -> set[int]:
        """Set of variables that actually occur in some clause."""
        occ: set[int] = set()
        for clause in self.clauses:
            for lit in clause:
                occ.add(abs(lit))
        return occ

    def stats(self) -> Dict[str, int]:
        """Size statistics used by the space-efficiency experiments."""
        return {
            "vars": self.num_vars,
            "clauses": len(self.clauses),
            "literals": self.num_literals,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CNF(vars={self.num_vars}, clauses={len(self.clauses)})"
