"""Hash-consed Boolean expression DAGs.

This module is the Boolean substrate for the whole library: transition
relations, initial/final state predicates and properties are all built as
:class:`Expr` DAGs and later compiled to CNF (:mod:`repro.logic.tseitin`)
or to AIGs (:mod:`repro.logic.aig`).

Expressions are immutable and *hash-consed*: structurally identical
sub-expressions are represented by the same Python object, so equality is
identity and DAG sharing is automatic.  Constructors perform light,
local simplification (constant folding, flattening, complement
detection), which keeps downstream CNF encodings small without a separate
rewriting pass.

Example
-------
>>> a, b = var("a"), var("b")
>>> f = (a & ~b) | (b & ~a)
>>> f.evaluate({"a": True, "b": False})
True
>>> sorted(f.support())
['a', 'b']
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, Mapping, Tuple

__all__ = [
    "Expr",
    "var",
    "const",
    "TRUE",
    "FALSE",
    "mk_not",
    "mk_and",
    "mk_or",
    "mk_xor",
    "mk_iff",
    "mk_implies",
    "mk_ite",
    "conjoin",
    "disjoin",
    "equal_vectors",
    "substitute",
    "simplify_with",
    "expr_size",
    "clear_intern_cache",
]

# Node operator tags.  Kept as plain strings for debuggability.
_VAR = "var"
_CONST = "const"
_NOT = "not"
_AND = "and"
_OR = "or"
_XOR = "xor"
_IFF = "iff"
_ITE = "ite"

_OPS_WITH_ARGS = frozenset({_NOT, _AND, _OR, _XOR, _IFF, _ITE})

_intern_table: Dict[tuple, "Expr"] = {}
_id_counter = itertools.count()


class Expr:
    """An immutable node of a Boolean expression DAG.

    Do not instantiate directly; use :func:`var`, :func:`const` and the
    ``mk_*`` constructors (or the overloaded operators ``&``, ``|``,
    ``~``, ``^``).  Thanks to hash-consing, ``==`` is identity and nodes
    are safely usable as dictionary keys.
    """

    __slots__ = ("op", "args", "name", "value", "uid")

    op: str
    args: Tuple["Expr", ...]
    name: str | None
    value: bool | None
    uid: int

    def __new__(cls, op: str, args: Tuple["Expr", ...] = (),
                name: str | None = None, value: bool | None = None) -> "Expr":
        key = (op, args, name, value)
        node = _intern_table.get(key)
        if node is not None:
            return node
        node = object.__new__(cls)
        object.__setattr__(node, "op", op)
        object.__setattr__(node, "args", args)
        object.__setattr__(node, "name", name)
        object.__setattr__(node, "value", value)
        object.__setattr__(node, "uid", next(_id_counter))
        _intern_table[key] = node
        return node

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Expr nodes are immutable")

    def __reduce__(self) -> tuple:
        # Hash-consed nodes cannot use default pickling (__new__ takes
        # arguments and __setattr__ is disabled).  Reconstructing through
        # Expr(...) re-interns every node in the receiving process, so
        # DAG sharing and identity-equality survive a round trip — this
        # is what lets transition systems travel to portfolio worker
        # processes.
        return (Expr, (self.op, self.args, self.name, self.value))

    # ------------------------------------------------------------------
    # Operator sugar
    # ------------------------------------------------------------------
    def __invert__(self) -> "Expr":
        return mk_not(self)

    def __and__(self, other: "Expr") -> "Expr":
        return mk_and(self, other)

    def __or__(self, other: "Expr") -> "Expr":
        return mk_or(self, other)

    def __xor__(self, other: "Expr") -> "Expr":
        return mk_xor(self, other)

    def implies(self, other: "Expr") -> "Expr":
        """Return ``self -> other``."""
        return mk_implies(self, other)

    def iff(self, other: "Expr") -> "Expr":
        """Return ``self <-> other``."""
        return mk_iff(self, other)

    def ite(self, then_branch: "Expr", else_branch: "Expr") -> "Expr":
        """Return ``if self then then_branch else else_branch``."""
        return mk_ite(self, then_branch, else_branch)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def is_var(self) -> bool:
        return self.op == _VAR

    @property
    def is_const(self) -> bool:
        return self.op == _CONST

    @property
    def is_true(self) -> bool:
        return self.op == _CONST and self.value is True

    @property
    def is_false(self) -> bool:
        return self.op == _CONST and self.value is False

    def iter_dag(self) -> Iterator["Expr"]:
        """Yield every node of the DAG rooted here exactly once.

        Children are yielded before parents (post-order), which makes the
        iterator directly usable for bottom-up evaluation passes.
        """
        seen: set[int] = set()
        stack: list[tuple[Expr, bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if node.uid in seen:
                continue
            if expanded:
                seen.add(node.uid)
                yield node
            else:
                stack.append((node, True))
                for child in node.args:
                    if child.uid not in seen:
                        stack.append((child, False))

    def support(self) -> FrozenSet[str]:
        """Return the set of variable names the expression depends on."""
        return frozenset(n.name for n in self.iter_dag()
                         if n.op == _VAR and n.name is not None)

    def evaluate(self, env: Mapping[str, bool]) -> bool:
        """Evaluate under a total assignment ``env`` (name -> bool).

        Raises ``KeyError`` if a variable in the support is missing from
        ``env``.  Evaluation is iterative, so arbitrarily deep DAGs are
        safe.
        """
        values: Dict[int, bool] = {}
        for node in self.iter_dag():
            values[node.uid] = _eval_node(node, values, env)
        return values[self.uid]

    def size(self) -> int:
        """Number of distinct DAG nodes (a proxy for formula size)."""
        return sum(1 for _ in self.iter_dag())

    def depth(self) -> int:
        """Longest path from this node to a leaf."""
        depths: Dict[int, int] = {}
        for node in self.iter_dag():
            if not node.args:
                depths[node.uid] = 0
            else:
                depths[node.uid] = 1 + max(depths[c.uid] for c in node.args)
        return depths[self.uid]

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Expr({self})"

    def __str__(self) -> str:
        return _format(self)


def _eval_node(node: Expr, values: Dict[int, bool],
               env: Mapping[str, bool]) -> bool:
    op = node.op
    if op == _CONST:
        assert node.value is not None
        return node.value
    if op == _VAR:
        assert node.name is not None
        return bool(env[node.name])
    child = [values[c.uid] for c in node.args]
    if op == _NOT:
        return not child[0]
    if op == _AND:
        return all(child)
    if op == _OR:
        return any(child)
    if op == _XOR:
        return child[0] != child[1]
    if op == _IFF:
        return child[0] == child[1]
    if op == _ITE:
        return child[1] if child[0] else child[2]
    raise ValueError(f"unknown operator {op!r}")


def _format(root: Expr) -> str:
    parts: Dict[int, str] = {}
    for node in root.iter_dag():
        op = node.op
        if op == _CONST:
            parts[node.uid] = "1" if node.value else "0"
        elif op == _VAR:
            parts[node.uid] = str(node.name)
        elif op == _NOT:
            parts[node.uid] = f"!{parts[node.args[0].uid]}"
        elif op == _ITE:
            c, t, e = (parts[a.uid] for a in node.args)
            parts[node.uid] = f"ite({c}, {t}, {e})"
        else:
            sym = {_AND: " & ", _OR: " | ", _XOR: " ^ ", _IFF: " <-> "}[op]
            parts[node.uid] = "(" + sym.join(parts[a.uid] for a in node.args) + ")"
    return parts[root.uid]


# ----------------------------------------------------------------------
# Leaf constructors
# ----------------------------------------------------------------------

TRUE = Expr(_CONST, value=True)
FALSE = Expr(_CONST, value=False)


def const(value: bool) -> Expr:
    """Return the constant TRUE or FALSE node."""
    return TRUE if value else FALSE


def var(name: str) -> Expr:
    """Return the (unique) variable node with the given name."""
    if not isinstance(name, str) or not name:
        raise ValueError(f"variable name must be a non-empty string, got {name!r}")
    return Expr(_VAR, name=name)


# ----------------------------------------------------------------------
# Simplifying constructors
# ----------------------------------------------------------------------

def mk_not(a: Expr) -> Expr:
    """Negation with double-negation and constant folding."""
    if a.op == _NOT:
        return a.args[0]
    if a.is_const:
        return const(not a.value)
    return Expr(_NOT, (a,))


def _strip_not(a: Expr) -> Tuple[Expr, bool]:
    """Return (atom, negated) where ``a == ~atom`` iff ``negated``."""
    if a.op == _NOT:
        return a.args[0], True
    return a, False


def _mk_nary(op: str, neutral: Expr, dominant: Expr,
             operands: Iterable[Expr]) -> Expr:
    """Shared builder for AND/OR: flatten, fold, dedupe, detect x op ~x."""
    flat: list[Expr] = []
    stack = list(operands)
    stack.reverse()
    while stack:
        item = stack.pop()
        if not isinstance(item, Expr):
            raise TypeError(f"expected Expr, got {type(item).__name__}")
        if item.op == op:
            stack.extend(reversed(item.args))
        elif item is dominant:
            return dominant
        elif item is neutral:
            continue
        else:
            flat.append(item)

    seen: set[int] = set()
    atoms: set[tuple[int, bool]] = set()
    unique: list[Expr] = []
    for item in flat:
        if item.uid in seen:
            continue
        seen.add(item.uid)
        atom, neg = _strip_not(item)
        if (atom.uid, not neg) in atoms:
            return dominant          # x and ~x both present
        atoms.add((atom.uid, neg))
        unique.append(item)

    if not unique:
        return neutral
    if len(unique) == 1:
        return unique[0]
    unique.sort(key=lambda n: n.uid)
    return Expr(op, tuple(unique))


def mk_and(*operands: Expr) -> Expr:
    """N-ary conjunction with flattening and local simplification."""
    return _mk_nary(_AND, TRUE, FALSE, operands)


def mk_or(*operands: Expr) -> Expr:
    """N-ary disjunction with flattening and local simplification."""
    return _mk_nary(_OR, FALSE, TRUE, operands)


def conjoin(operands: Iterable[Expr]) -> Expr:
    """Conjunction of an iterable (``mk_and`` over a sequence)."""
    return mk_and(*operands)


def disjoin(operands: Iterable[Expr]) -> Expr:
    """Disjunction of an iterable (``mk_or`` over a sequence)."""
    return mk_or(*operands)


def mk_xor(a: Expr, b: Expr) -> Expr:
    """Binary exclusive-or with constant/complement folding."""
    if a.is_const:
        return mk_not(b) if a.value else b
    if b.is_const:
        return mk_not(a) if b.value else a
    if a is b:
        return FALSE
    a_atom, a_neg = _strip_not(a)
    b_atom, b_neg = _strip_not(b)
    if a_atom is b_atom:
        return TRUE if a_neg != b_neg else FALSE
    # Canonicalize: keep negations out of XOR when they cancel pairwise.
    if a_neg and b_neg:
        a, b = a_atom, b_atom
    if a.uid > b.uid:
        a, b = b, a
    return Expr(_XOR, (a, b))


def mk_iff(a: Expr, b: Expr) -> Expr:
    """Binary equivalence: ``a <-> b == ~(a ^ b)``."""
    return mk_not(mk_xor(a, b))


def mk_implies(a: Expr, b: Expr) -> Expr:
    """Implication ``a -> b`` as ``~a | b``."""
    return mk_or(mk_not(a), b)


def mk_ite(cond: Expr, then_branch: Expr, else_branch: Expr) -> Expr:
    """If-then-else with constant folding on any argument."""
    if cond.is_const:
        return then_branch if cond.value else else_branch
    if then_branch is else_branch:
        return then_branch
    if then_branch.is_true and else_branch.is_false:
        return cond
    if then_branch.is_false and else_branch.is_true:
        return mk_not(cond)
    if then_branch.is_true:
        return mk_or(cond, else_branch)
    if then_branch.is_false:
        return mk_and(mk_not(cond), else_branch)
    if else_branch.is_true:
        return mk_or(mk_not(cond), then_branch)
    if else_branch.is_false:
        return mk_and(cond, then_branch)
    return Expr(_ITE, (cond, then_branch, else_branch))


def equal_vectors(xs: Iterable[Expr], ys: Iterable[Expr]) -> Expr:
    """Bitwise equality of two equal-length vectors: ``⋀ (x_i <-> y_i)``.

    This is the ``U <-> Z_i`` selector used throughout the QBF encodings
    of the paper (formulae (2) and (3)).
    """
    xs = list(xs)
    ys = list(ys)
    if len(xs) != len(ys):
        raise ValueError(f"vector length mismatch: {len(xs)} vs {len(ys)}")
    return conjoin(mk_iff(x, y) for x, y in zip(xs, ys))


# ----------------------------------------------------------------------
# Structure-preserving transforms
# ----------------------------------------------------------------------

def _rebuild(node: Expr, new_args: Tuple[Expr, ...]) -> Expr:
    op = node.op
    if op == _NOT:
        return mk_not(new_args[0])
    if op == _AND:
        return mk_and(*new_args)
    if op == _OR:
        return mk_or(*new_args)
    if op == _XOR:
        return mk_xor(new_args[0], new_args[1])
    if op == _IFF:
        return mk_iff(new_args[0], new_args[1])
    if op == _ITE:
        return mk_ite(new_args[0], new_args[1], new_args[2])
    raise ValueError(f"cannot rebuild operator {op!r}")


def substitute(root: Expr, mapping: Mapping[str, Expr]) -> Expr:
    """Simultaneously replace variables by expressions.

    ``mapping`` maps variable *names* to replacement expressions.
    Variables absent from the mapping are left untouched.  The result is
    re-simplified bottom-up by the ``mk_*`` constructors.
    """
    out: Dict[int, Expr] = {}
    for node in root.iter_dag():
        if node.op == _VAR:
            assert node.name is not None
            out[node.uid] = mapping.get(node.name, node)
        elif node.op == _CONST:
            out[node.uid] = node
        else:
            out[node.uid] = _rebuild(node, tuple(out[c.uid] for c in node.args))
    return out[root.uid]


def simplify_with(root: Expr, partial: Mapping[str, bool]) -> Expr:
    """Cofactor ``root`` with respect to a partial assignment."""
    mapping = {name: const(value) for name, value in partial.items()}
    return substitute(root, mapping)


def expr_size(root: Expr) -> int:
    """Convenience alias for ``root.size()``."""
    return root.size()


def rename_vars(root: Expr, rename: Mapping[str, str] | Callable[[str], str]) -> Expr:
    """Rename variables via a dict or a callable on names."""
    if callable(rename):
        fn = rename
    else:
        table = dict(rename)

        def fn(name: str) -> str:
            return table.get(name, name)

    mapping = {name: var(fn(name)) for name in root.support()}
    return substitute(root, mapping)


def clear_intern_cache() -> None:
    """Drop the global hash-consing table (keeps TRUE/FALSE alive).

    Mainly useful in long-running test sessions to bound memory.  Existing
    Expr objects remain valid; newly built structurally-equal nodes will
    simply no longer be identical to the old ones, so callers must not mix
    expressions created across a cache clear.
    """
    _intern_table.clear()
    _intern_table[(_CONST, (), None, True)] = TRUE
    _intern_table[(_CONST, (), None, False)] = FALSE
