"""Tseitin (structural) CNF transformation.

Converts :class:`repro.logic.expr.Expr` DAGs into CNF while introducing
one auxiliary variable per internal DAG node.  Because expressions are
hash-consed, shared sub-formulae are encoded exactly once.

Two encoding styles are provided:

* **Tseitin** (default) — full bi-implication definitions; the auxiliary
  variables are *functionally determined* by the inputs, which matters
  for the QBF encodings (the auxiliaries can soundly live in an
  innermost existential block regardless of the matrix polarity).
* **Plaisted–Greenbaum** — polarity-reduced definitions; smaller, but
  only equisatisfiable, and therefore used only for plain SAT encodings.
  Polarities are computed as a fixpoint over the DAG, so shared nodes
  reachable under both phases receive the full definition.

The encoder deliberately has *no* global state: it writes into a caller-
supplied :class:`repro.logic.cnf.CNF` and :class:`VarPool` so that BMC
unrollers can mix several encoded formulae in one variable space.
"""

from __future__ import annotations

from typing import Dict, List

from .cnf import CNF, VarPool
from .expr import Expr

__all__ = ["TseitinEncoder", "encode_expr", "expr_to_cnf"]

# Polarity lattice: 1 (positive only), -1 (negative only), 0 (both).
_BOTH = 0


def _merge_polarity(old: int | None, new: int) -> int:
    if old is None:
        return new
    if old == new:
        return old
    return _BOTH


def _child_polarity(op: str, polarity: int) -> int:
    """Polarity of children given the parent's op and polarity."""
    if polarity == _BOTH:
        return _BOTH
    if op == "not":
        return -polarity
    if op in ("and", "or"):
        return polarity
    # XOR / IFF / ITE use their children in both phases.
    return _BOTH


class TseitinEncoder:
    """Encodes expressions into a shared CNF/VarPool pair.

    The encoder memoizes node -> literal across calls, so encoding several
    formulae over the same variables reuses all shared structure.

    Parameters
    ----------
    cnf:
        Destination clause container.
    pool:
        Variable allocator; named expression variables map through
        ``pool.named(name)``.
    polarity_reduction:
        Use Plaisted–Greenbaum instead of full Tseitin definitions.
    """

    def __init__(self, cnf: CNF, pool: VarPool,
                 polarity_reduction: bool = False) -> None:
        self.cnf = cnf
        self.pool = pool
        self.polarity_reduction = polarity_reduction
        self._lit_cache: Dict[int, int] = {}
        # Which polarities already have definitional clauses emitted.
        self._emitted: Dict[int, set[int]] = {}
        self.aux_vars: List[int] = []

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def encode(self, root: Expr) -> int:
        """Return a literal defined to be equivalent to ``root``.

        With full Tseitin the returned literal is logically equivalent to
        the expression; with Plaisted–Greenbaum it is only constrained in
        the polarities under which it is used (the caller is expected to
        assert it positively).  Constants are materialized as a fresh unit-
        constrained literal so the result is always a plain literal.
        """
        if root.is_const:
            # Pin a fresh variable to the constant's value and return
            # the *variable* literal, so the returned literal evaluates
            # to the constant (returning the asserted unit itself would
            # hand back a true literal even for FALSE).
            v = self.pool.fresh("const")
            self._sync_vars()
            self.cnf.add_unit(v if root.value else -v)
            return v
        polarity = 1 if self.polarity_reduction else _BOTH
        return self._encode_dag(root, polarity)

    def assert_expr(self, root: Expr) -> None:
        """Add ``root`` as a constraint (unit clause on its literal)."""
        if root.is_true:
            return
        if root.is_false:
            self.cnf.add_clause(())      # empty clause: unsatisfiable
            return
        polarity = 1 if self.polarity_reduction else _BOTH
        self.cnf.add_unit(self._encode_dag(root, polarity))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _sync_vars(self) -> None:
        if self.pool.num_vars > self.cnf.num_vars:
            self.cnf.num_vars = self.pool.num_vars

    def _compute_polarities(self, root: Expr, polarity: int) -> Dict[int, int]:
        """Fixpoint polarity labelling of the DAG under ``root``."""
        node_pol: Dict[int, int] = {root.uid: polarity}
        worklist: List[Expr] = [root]
        while worklist:
            node = worklist.pop()
            pol = node_pol[node.uid]
            child_pol = _child_polarity(node.op, pol)
            for child in node.args:
                old = node_pol.get(child.uid)
                new = _merge_polarity(old, child_pol)
                if new != old:
                    node_pol[child.uid] = new
                    worklist.append(child)
        return node_pol

    def _encode_dag(self, root: Expr, polarity: int) -> int:
        node_pol = self._compute_polarities(root, polarity)
        lits: Dict[int, int] = {}
        for node in root.iter_dag():          # post-order: children first
            lits[node.uid] = self._emit(node, lits, node_pol[node.uid])
        return lits[root.uid]

    def _emit(self, node: Expr, lits: Dict[int, int], polarity: int) -> int:
        op = node.op
        if op == "var":
            assert node.name is not None
            v = self.pool.named(node.name)
            self._sync_vars()
            return v
        if op == "const":
            # The mk_* constructors fold constants below the root away.
            raise AssertionError("constant below the root of a simplified Expr")
        if op == "not":
            return -lits[node.args[0].uid]

        out = self._lit_cache.get(node.uid)
        if out is None:
            v = self.pool.fresh(f"t{node.uid}")
            self._sync_vars()
            out = v
            self._lit_cache[node.uid] = out
            self.aux_vars.append(v)
            self._emitted[node.uid] = set()

        if not self.polarity_reduction:
            polarity = _BOTH
        done = self._emitted[node.uid]
        if _BOTH in done or polarity in done:
            return out
        want_pos = polarity >= 0 and not any(p >= 0 for p in done)
        want_neg = polarity <= 0 and not any(p <= 0 for p in done)
        done.add(polarity)

        args = [lits[a.uid] for a in node.args]
        add = self.cnf.add_clause
        if op == "and":
            # positive use needs: out -> each arg
            if want_pos:
                for a in args:
                    add((-out, a))
            # negative use needs: all args -> out
            if want_neg:
                add(tuple(-a for a in args) + (out,))
        elif op == "or":
            # positive use needs: out -> (a1 | ... | an)
            if want_pos:
                add((-out,) + tuple(args))
            # negative use needs: each arg -> out
            if want_neg:
                for a in args:
                    add((out, -a))
        elif op == "xor":
            a, b = args
            if want_pos:
                add((-out, a, b))
                add((-out, -a, -b))
            if want_neg:
                add((out, -a, b))
                add((out, a, -b))
        elif op == "iff":
            a, b = args
            if want_pos:
                add((-out, -a, b))
                add((-out, a, -b))
            if want_neg:
                add((out, a, b))
                add((out, -a, -b))
        elif op == "ite":
            c, t, e = args
            if want_pos:
                add((-out, -c, t))
                add((-out, c, e))
                add((-out, t, e))        # redundant, strengthens propagation
            if want_neg:
                add((out, -c, -t))
                add((out, c, -e))
                add((out, -t, -e))       # redundant, strengthens propagation
        else:
            raise ValueError(f"unknown operator {op!r}")
        return out


def encode_expr(root: Expr, cnf: CNF, pool: VarPool,
                polarity_reduction: bool = False) -> int:
    """One-shot helper: encode ``root`` into ``cnf`` and return its literal."""
    return TseitinEncoder(cnf, pool, polarity_reduction).encode(root)


def expr_to_cnf(root: Expr, polarity_reduction: bool = False,
                pool: VarPool | None = None) -> tuple[CNF, VarPool]:
    """Convert an expression to a standalone CNF asserting the expression.

    Returns the CNF and the variable pool (for name lookups).
    """
    if pool is None:
        pool = VarPool()
    cnf = CNF()
    enc = TseitinEncoder(cnf, pool, polarity_reduction)
    enc.assert_expr(root)
    cnf.num_vars = max(cnf.num_vars, pool.num_vars)
    return cnf, pool
