"""DIMACS CNF and QDIMACS reading/writing.

Supports the standard ``p cnf <vars> <clauses>`` header, comment lines,
and (for QDIMACS) ``a``/``e`` quantifier lines.  The QDIMACS functions
exchange data with :class:`repro.qbf.pcnf.PCNF` using plain containers so
the logic package stays dependency-free.
"""

from __future__ import annotations

import io
from typing import Iterable, List, Sequence, TextIO, Tuple

from .cnf import CNF

__all__ = [
    "parse_dimacs",
    "write_dimacs",
    "parse_qdimacs",
    "write_qdimacs",
    "DimacsError",
]


class DimacsError(ValueError):
    """Raised on malformed DIMACS/QDIMACS input."""


def _tokens(stream: TextIO) -> Iterable[List[str]]:
    for raw in stream:
        line = raw.strip()
        if not line or line.startswith("c") or line.startswith("%"):
            continue
        yield line.split()


def parse_dimacs(source: str | TextIO) -> CNF:
    """Parse DIMACS CNF from a string or file-like object."""
    stream = io.StringIO(source) if isinstance(source, str) else source
    cnf = CNF()
    declared_vars = None
    declared_clauses = None
    current: List[int] = []
    for toks in _tokens(stream):
        if toks[0] == "p":
            if len(toks) != 4 or toks[1] != "cnf":
                raise DimacsError(f"bad problem line: {' '.join(toks)}")
            try:
                declared_vars = int(toks[2])
                declared_clauses = int(toks[3])
            except ValueError as exc:
                raise DimacsError(f"bad problem line: {' '.join(toks)}") from exc
            continue
        for tok in toks:
            try:
                lit = int(tok)
            except ValueError as exc:
                raise DimacsError(f"bad literal {tok!r}") from exc
            if lit == 0:
                cnf.add_clause(current)
                current = []
            else:
                current.append(lit)
    if current:
        # Tolerate a final clause missing its terminating 0.
        cnf.add_clause(current)
    if declared_vars is not None:
        cnf.num_vars = max(cnf.num_vars, declared_vars)
    if declared_clauses is not None and declared_clauses != len(cnf.clauses):
        # Header mismatches are common in the wild; tolerated silently.
        pass
    return cnf


def write_dimacs(cnf: CNF, comments: Sequence[str] = ()) -> str:
    """Serialize a CNF to DIMACS text."""
    out: List[str] = [f"c {c}" for c in comments]
    out.append(f"p cnf {cnf.num_vars} {len(cnf.clauses)}")
    for clause in cnf.clauses:
        out.append(" ".join(str(l) for l in clause) + " 0")
    return "\n".join(out) + "\n"


QuantifierBlock = Tuple[str, Tuple[int, ...]]


def parse_qdimacs(source: str | TextIO) -> Tuple[List[QuantifierBlock], CNF]:
    """Parse QDIMACS; returns (prefix, matrix).

    The prefix is a list of ``(quantifier, vars)`` pairs where quantifier
    is ``'a'`` or ``'e'``; consecutive same-quantifier lines are merged.
    """
    stream = io.StringIO(source) if isinstance(source, str) else source
    prefix: List[QuantifierBlock] = []
    cnf = CNF()
    declared_vars = None
    current: List[int] = []
    in_matrix = False
    for toks in _tokens(stream):
        if toks[0] == "p":
            if len(toks) != 4 or toks[1] != "cnf":
                raise DimacsError(f"bad problem line: {' '.join(toks)}")
            declared_vars = int(toks[2])
            continue
        if toks[0] in ("a", "e"):
            if in_matrix:
                raise DimacsError("quantifier line after matrix start")
            if toks[-1] != "0":
                raise DimacsError("quantifier line not 0-terminated")
            variables = tuple(int(t) for t in toks[1:-1])
            if any(v <= 0 for v in variables):
                raise DimacsError("quantified variables must be positive")
            if prefix and prefix[-1][0] == toks[0]:
                prefix[-1] = (toks[0], prefix[-1][1] + variables)
            else:
                prefix.append((toks[0], variables))
            continue
        in_matrix = True
        for tok in toks:
            lit = int(tok)
            if lit == 0:
                cnf.add_clause(current)
                current = []
            else:
                current.append(lit)
    if current:
        cnf.add_clause(current)
    if declared_vars is not None:
        cnf.num_vars = max(cnf.num_vars, declared_vars)
    return prefix, cnf


def write_qdimacs(prefix: Sequence[QuantifierBlock], cnf: CNF,
                  comments: Sequence[str] = ()) -> str:
    """Serialize a prefix + matrix to QDIMACS text."""
    out: List[str] = [f"c {c}" for c in comments]
    out.append(f"p cnf {cnf.num_vars} {len(cnf.clauses)}")
    for quantifier, variables in prefix:
        if quantifier not in ("a", "e"):
            raise DimacsError(f"bad quantifier {quantifier!r}")
        if variables:
            out.append(f"{quantifier} " + " ".join(str(v) for v in variables) + " 0")
    for clause in cnf.clauses:
        out.append(" ".join(str(l) for l in clause) + " 0")
    return "\n".join(out) + "\n"
