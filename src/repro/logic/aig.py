"""And-Inverter Graphs (AIGs) with structural hashing.

AIGs are the de-facto exchange format of the hardware model-checking
community (AIGER).  This module provides:

* a compact AIG data structure (ands over two literal operands, with
  inversion encoded in the literal's low bit, as in AIGER),
* structural hashing plus the usual local rewrites,
* conversion to/from :class:`repro.logic.expr.Expr`, and
* sequential elements (latches) and named inputs/outputs, enough to
  round-trip AIGER ASCII files (see :mod:`repro.system.aiger_io`).

Literal convention (AIGER): a *literal* is ``2*var + sign`` where
``var`` 0 is the constant FALSE, so literal 0 is FALSE and literal 1 is
TRUE.  ``lit ^ 1`` negates.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from . import expr as ex
from .expr import Expr

__all__ = ["AIG", "aig_from_expr", "aig_to_expr", "AIG_FALSE", "AIG_TRUE"]

AIG_FALSE = 0
AIG_TRUE = 1


def _aig_not(lit: int) -> int:
    return lit ^ 1


class AIG:
    """A (possibly sequential) And-Inverter Graph.

    Attributes
    ----------
    inputs:
        List of input literals (even, positive).
    latches:
        List of ``(latch_literal, next_state_literal, init_value)``
        triples; ``init_value`` is 0, 1 or None (uninitialized).
    outputs:
        List of output literals.
    ands:
        ``ands[i]`` is the pair of operand literals of AND node with
        variable index ``i + first_and_var``.
    """

    def __init__(self) -> None:
        self._num_vars = 0                     # excluding constant var 0
        self.inputs: List[int] = []
        self.latches: List[Tuple[int, int, int | None]] = []
        self.outputs: List[int] = []
        self._and_defs: Dict[int, Tuple[int, int]] = {}   # var -> (a, b)
        self._strash: Dict[Tuple[int, int], int] = {}     # (a, b) -> lit
        self.names: Dict[int, str] = {}                   # literal -> name

    # ------------------------------------------------------------------
    # Node creation
    # ------------------------------------------------------------------
    def _new_var(self) -> int:
        self._num_vars += 1
        return self._num_vars

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_ands(self) -> int:
        return len(self._and_defs)

    def add_input(self, name: str | None = None) -> int:
        """Create a new primary input; returns its (positive) literal."""
        lit = 2 * self._new_var()
        self.inputs.append(lit)
        if name:
            self.names[lit] = name
        return lit

    def add_latch(self, name: str | None = None,
                  init: int | None = 0) -> int:
        """Create a latch with yet-unset next-state; returns its literal.

        Call :meth:`set_latch_next` once the next-state cone is built.
        """
        lit = 2 * self._new_var()
        self.latches.append((lit, AIG_FALSE, init))
        if name:
            self.names[lit] = name
        return lit

    def set_latch_next(self, latch_lit: int, next_lit: int) -> None:
        """Define the next-state function of an existing latch."""
        for idx, (lit, _, init) in enumerate(self.latches):
            if lit == latch_lit:
                self.latches[idx] = (lit, next_lit, init)
                return
        raise KeyError(f"literal {latch_lit} is not a latch")

    def add_output(self, lit: int, name: str | None = None) -> None:
        """Mark a literal as a primary output."""
        self.outputs.append(lit)
        if name:
            self.names[lit] = name

    def mk_and(self, a: int, b: int) -> int:
        """Structural-hashed AND with the standard local rewrites."""
        if a > b:
            a, b = b, a
        if a == AIG_FALSE or a == _aig_not(b):
            return AIG_FALSE
        if a == AIG_TRUE:
            return b
        if a == b:
            return a
        key = (a, b)
        cached = self._strash.get(key)
        if cached is not None:
            return cached
        v = self._new_var()
        lit = 2 * v
        self._and_defs[v] = key
        self._strash[key] = lit
        return lit

    def mk_or(self, a: int, b: int) -> int:
        return _aig_not(self.mk_and(_aig_not(a), _aig_not(b)))

    def mk_xor(self, a: int, b: int) -> int:
        return self.mk_or(self.mk_and(a, _aig_not(b)),
                          self.mk_and(_aig_not(a), b))

    def mk_ite(self, c: int, t: int, e: int) -> int:
        return self.mk_or(self.mk_and(c, t), self.mk_and(_aig_not(c), e))

    def mk_not(self, a: int) -> int:
        return _aig_not(a)

    def and_def(self, var: int) -> Tuple[int, int]:
        """Operands of AND node ``var``."""
        return self._and_defs[var]

    def iter_ands(self) -> Iterable[Tuple[int, int, int]]:
        """Yield ``(lhs_literal, rhs0, rhs1)`` in topological order."""
        for v in sorted(self._and_defs):
            a, b = self._and_defs[v]
            yield 2 * v, a, b

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, lit_values: Dict[int, bool],
                 targets: Sequence[int]) -> List[bool]:
        """Evaluate target literals given values for inputs and latches.

        ``lit_values`` maps *positive* literals (inputs/latches) to bool.
        """
        values: Dict[int, bool] = {AIG_FALSE: False}
        for positive_lit, val in lit_values.items():
            values[positive_lit] = bool(val)
        for lhs, a, b in self.iter_ands():
            values[lhs] = self._value_of(a, values) and self._value_of(b, values)
        return [self._value_of(t, values) for t in targets]

    @staticmethod
    def _value_of(lit: int, values: Dict[int, bool]) -> bool:
        base = values[lit & ~1]
        return (not base) if (lit & 1) else base

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"AIG(inputs={len(self.inputs)}, latches={len(self.latches)},"
                f" ands={self.num_ands}, outputs={len(self.outputs)})")


def aig_from_expr(roots: Sequence[Expr]) -> Tuple[AIG, List[int]]:
    """Build a combinational AIG from expression roots.

    Expression variables become AIG inputs (one per distinct name, in
    first-seen order).  Returns the AIG and the literal of each root.
    """
    aig = AIG()
    input_lits: Dict[str, int] = {}
    cache: Dict[int, int] = {}

    def lit_of_var(name: str) -> int:
        lit = input_lits.get(name)
        if lit is None:
            lit = aig.add_input(name)
            input_lits[name] = lit
        return lit

    root_lits: List[int] = []
    for root in roots:
        for node in root.iter_dag():
            if node.uid in cache:
                continue
            if node.is_const:
                cache[node.uid] = AIG_TRUE if node.value else AIG_FALSE
            elif node.is_var:
                assert node.name is not None
                cache[node.uid] = lit_of_var(node.name)
            elif node.op == "not":
                cache[node.uid] = _aig_not(cache[node.args[0].uid])
            elif node.op == "and":
                acc = AIG_TRUE
                for child in node.args:
                    acc = aig.mk_and(acc, cache[child.uid])
                cache[node.uid] = acc
            elif node.op == "or":
                acc = AIG_FALSE
                for child in node.args:
                    acc = aig.mk_or(acc, cache[child.uid])
                cache[node.uid] = acc
            elif node.op == "xor":
                a, b = (cache[c.uid] for c in node.args)
                cache[node.uid] = aig.mk_xor(a, b)
            elif node.op == "iff":
                a, b = (cache[c.uid] for c in node.args)
                cache[node.uid] = _aig_not(aig.mk_xor(a, b))
            elif node.op == "ite":
                c, t, e = (cache[x.uid] for x in node.args)
                cache[node.uid] = aig.mk_ite(c, t, e)
            else:
                raise ValueError(f"unknown operator {node.op!r}")
        root_lits.append(cache[root.uid])
    return aig, root_lits


def aig_to_expr(aig: AIG, lit: int,
                leaf_names: Dict[int, str] | None = None) -> Expr:
    """Convert the cone of ``lit`` back into an expression.

    ``leaf_names`` optionally overrides the names of input/latch leaves
    (keyed by positive literal); unnamed leaves get ``n<var>``.

    AND operands always have smaller variable indices than the node that
    uses them (nodes are hashed after their operands exist), so a single
    pass over AND nodes in variable order is a topological rebuild.
    """
    leaf_names = leaf_names or {}

    def leaf(positive_lit: int) -> Expr:
        name = leaf_names.get(positive_lit) or aig.names.get(positive_lit)
        if name is None:
            name = f"n{positive_lit // 2}"
        return ex.var(name)

    memo: Dict[int, Expr] = {AIG_FALSE: ex.FALSE}

    def expr_of(l: int) -> Expr:
        positive = l & ~1
        node = memo.get(positive)
        if node is None:
            node = leaf(positive)
            memo[positive] = node
        return ex.mk_not(node) if (l & 1) else node

    for lhs, a, b in aig.iter_ands():
        memo[lhs] = ex.mk_and(expr_of(a), expr_of(b))
    return expr_of(lit)
