"""Prenex CNF (PCNF) representation of Quantified Boolean Formulae.

A PCNF is a quantifier prefix — an alternating sequence of blocks, each
existential (``'e'``) or universal (``'a'``) — over a propositional CNF
matrix.  Variables of the matrix not bound by the prefix are *free* and
treated as outermost existentials (standard QDIMACS semantics).

The paper's formulae (2) and (3) compile to PCNF:

* formula (2): ``∃ Z0..Zk  ∀ U,V  ∃ aux : matrix`` — one ∀ block whose
  width (2n) does not grow with the bound k;
* formula (3): ``∃ .. ∀ .. ∃ .. ∀ ..`` with ``⌈log2 k⌉`` alternations.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..logic.cnf import CNF
from ..logic.dimacs import write_qdimacs

__all__ = ["PCNF", "Block"]

Block = Tuple[str, Tuple[int, ...]]


class PCNF:
    """A prenex-CNF quantified Boolean formula."""

    def __init__(self, prefix: Sequence[Block] | None = None,
                 matrix: CNF | None = None) -> None:
        self.prefix: List[Block] = []
        self.matrix = matrix if matrix is not None else CNF()
        if prefix:
            for quantifier, variables in prefix:
                self.add_block(quantifier, variables)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_block(self, quantifier: str, variables: Iterable[int]) -> None:
        """Append a block; merges with the last block if same quantifier."""
        if quantifier not in ("a", "e"):
            raise ValueError(f"quantifier must be 'a' or 'e', got {quantifier!r}")
        variables = tuple(variables)
        if not variables:
            return
        if any(v <= 0 for v in variables):
            raise ValueError("quantified variables must be positive ints")
        bound = self.bound_vars()
        dup = bound.intersection(variables)
        if dup or len(set(variables)) != len(variables):
            raise ValueError(f"variables quantified twice: {sorted(dup)}")
        if self.prefix and self.prefix[-1][0] == quantifier:
            self.prefix[-1] = (quantifier, self.prefix[-1][1] + variables)
        else:
            self.prefix.append((quantifier, variables))

    def close(self) -> None:
        """Bind any free matrix variables in an outermost ∃ block."""
        free = sorted(self.free_vars())
        if not free:
            return
        if self.prefix and self.prefix[0][0] == "e":
            self.prefix[0] = ("e", tuple(free) + self.prefix[0][1])
        else:
            self.prefix.insert(0, ("e", tuple(free)))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def bound_vars(self) -> set[int]:
        out: set[int] = set()
        for _, variables in self.prefix:
            out.update(variables)
        return out

    def free_vars(self) -> set[int]:
        return self.matrix.variables() - self.bound_vars()

    def quantifier_of(self, var: int) -> str:
        """'a'/'e' for bound variables; free variables count as 'e'."""
        for quantifier, variables in self.prefix:
            if var in variables:
                return quantifier
        return "e"

    def level_of(self, var: int) -> int:
        """Prefix depth of a variable (0 = outermost; free vars are -1).

        Larger levels are *inner* (closer to the matrix).
        """
        for depth, (_, variables) in enumerate(self.prefix):
            if var in variables:
                return depth
        return -1

    def var_levels(self) -> Dict[int, Tuple[str, int]]:
        """Map every matrix variable to (quantifier, level).

        Free variables get ('e', -1): existential and outermost.
        """
        table: Dict[int, Tuple[str, int]] = {}
        for depth, (quantifier, variables) in enumerate(self.prefix):
            for v in variables:
                table[v] = (quantifier, depth)
        for v in self.matrix.variables():
            table.setdefault(v, ("e", -1))
        return table

    def num_alternations(self) -> int:
        """Quantifier alternations in the prefix (∃∀∃ has 2)."""
        return max(0, len([b for b in self.prefix if b[1]]) - 1)

    def num_universals(self) -> int:
        return sum(len(vs) for q, vs in self.prefix if q == "a")

    def num_existentials(self) -> int:
        return sum(len(vs) for q, vs in self.prefix if q == "e")

    def stats(self) -> Dict[str, int]:
        """Size statistics (feeds the space-efficiency experiments)."""
        out = self.matrix.stats()
        out["universals"] = self.num_universals()
        out["existentials"] = self.num_existentials()
        out["alternations"] = self.num_alternations()
        return out

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_qdimacs(self, comments: Sequence[str] = ()) -> str:
        """QDIMACS text (free variables are closed into an ∃ block)."""
        clone = PCNF(list(self.prefix), self.matrix)
        clone.close()
        return write_qdimacs(clone.prefix, clone.matrix, comments)

    def __repr__(self) -> str:  # pragma: no cover
        shape = " ".join(f"{q}{len(vs)}" for q, vs in self.prefix)
        return f"PCNF({shape} | {self.matrix!r})"
