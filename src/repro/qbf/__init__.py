"""QBF solving: prenex CNF, search-based QDPLL, expansion solver."""

from .expansion import ExpansionSolver, evaluate_qbf
from .pcnf import PCNF
from .qdpll import QbfStats, QdpllSolver

__all__ = ["PCNF", "QdpllSolver", "QbfStats", "ExpansionSolver",
           "evaluate_qbf"]
