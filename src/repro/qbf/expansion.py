"""Expansion-based QBF solving and a semantic evaluation oracle.

:class:`ExpansionSolver` eliminates universal quantifiers by Shannon
expansion (Quantor lineage): the innermost universal variable ``u`` is
removed by conjoining the ``u=0`` cofactor with a copy of the ``u=1``
cofactor in which all deeper existential variables are duplicated.  The
matrix roughly doubles per expanded variable — the memory-explosion
behaviour of general-purpose QBF solving that the paper's jSAT is
designed to avoid.  A literal cap turns the blow-up into an UNKNOWN
result instead of an actual blow-up.

:func:`evaluate_qbf` is a tiny recursive game-semantics evaluator used
as the ground-truth oracle in the test-suite (exponential; <= 22 vars).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..logic.cnf import CNF
from ..sat.kernel import make_solver
from ..sat.types import Budget, SolveResult
from .pcnf import PCNF

__all__ = ["ExpansionSolver", "evaluate_qbf"]


class ExpansionSolver:
    """Decide a PCNF by universal expansion down to a SAT problem."""

    def __init__(self, pcnf: PCNF, max_literals: int = 2_000_000) -> None:
        self.pcnf = pcnf
        self.max_literals = max_literals
        self.expanded_vars = 0
        self.peak_literals = 0

    def solve(self, budget: Budget | None = None) -> SolveResult:
        """Expand all universals, then decide the remaining matrix with CDCL."""
        prefix: List[Tuple[str, List[int]]] = [
            (q, list(vs)) for q, vs in self.pcnf.prefix if vs]
        clauses = [tuple(c) for c in self.pcnf.matrix.clauses]
        next_var = self.pcnf.matrix.num_vars + 1

        while True:
            # Drop empty blocks from the tail.
            while prefix and not prefix[-1][1]:
                prefix.pop()
            universal_index = max(
                (i for i, (q, vs) in enumerate(prefix) if q == "a" and vs),
                default=-1)
            if universal_index < 0:
                break
            deeper_existentials: List[int] = []
            for _, variables in prefix[universal_index + 1:]:
                deeper_existentials.extend(variables)
            block = prefix[universal_index][1]
            u = block.pop()
            if not deeper_existentials:
                clauses = _reduce_universal(clauses, u)
                if clauses is None:
                    return SolveResult.UNSAT
            else:
                clauses, next_var = _expand(clauses, u, deeper_existentials,
                                            next_var)
                # The duplicated existentials join the innermost block.
                fresh = list(range(next_var - len(deeper_existentials),
                                   next_var))
                prefix[-1][1].extend(fresh)
                self.expanded_vars += 1
            total = sum(len(c) for c in clauses)
            if total > self.peak_literals:
                self.peak_literals = total
            if total > self.max_literals:
                return SolveResult.UNKNOWN

        matrix = CNF(next_var - 1)
        for c in clauses:
            matrix.add_clause(c)
        solver = make_solver()
        if not solver.add_clauses(matrix.clauses):
            return SolveResult.UNSAT
        solver.ensure_vars(matrix.num_vars)
        return solver.solve(budget=budget)


def _reduce_universal(clauses: List[Tuple[int, ...]],
                      u: int) -> Optional[List[Tuple[int, ...]]]:
    """Delete ``u`` literals (no deeper existentials exist)."""
    out: List[Tuple[int, ...]] = []
    for clause in clauses:
        reduced = tuple(l for l in clause if abs(l) != u)
        if not reduced:
            return None            # clause had only u-literals (or was empty)
        out.append(reduced)
    return out


def _expand(clauses: List[Tuple[int, ...]], u: int,
            deeper: List[int], next_var: int
            ) -> Tuple[List[Tuple[int, ...]], int]:
    """Shannon-expand universal ``u``, duplicating ``deeper`` variables."""
    rename: Dict[int, int] = {}
    for v in deeper:
        rename[v] = next_var
        next_var += 1

    out: set[Tuple[int, ...]] = set()
    for clause in clauses:
        # u=0 cofactor: clauses containing -u are satisfied.
        if -u not in clause:
            out.add(tuple(sorted(l for l in clause if l != u)))
        # u=1 cofactor with deeper existentials renamed.
        if u not in clause:
            renamed = []
            for l in clause:
                if l == -u:
                    continue
                v = abs(l)
                nv = rename.get(v, v)
                renamed.append(nv if l > 0 else -nv)
            out.add(tuple(sorted(renamed)))
    return list(out), next_var


def evaluate_qbf(pcnf: PCNF, max_vars: int = 22) -> bool:
    """Ground-truth QBF evaluation by exhaustive game search.

    Free variables are treated as outermost existentials.  Only for
    small formulae (tests): complexity is ``2^#vars``.
    """
    closed = PCNF(list(pcnf.prefix), pcnf.matrix)
    closed.close()
    order: List[Tuple[int, str]] = []
    for quantifier, variables in closed.prefix:
        for v in variables:
            order.append((v, quantifier))
    if len(order) > max_vars:
        raise ValueError(f"{len(order)} variables is too many for the oracle")
    clauses = [tuple(c) for c in closed.matrix.clauses]
    env: Dict[int, bool] = {}

    def matrix_value() -> bool:
        for clause in clauses:
            if not any(env[abs(l)] == (l > 0) for l in clause):
                return False
        return True

    def recurse(i: int) -> bool:
        if i == len(order):
            return matrix_value()
        v, quantifier = order[i]
        results = []
        for value in (False, True):
            env[v] = value
            results.append(recurse(i + 1))
            del env[v]
            # Short-circuit.
            if quantifier == "e" and results[-1]:
                return True
            if quantifier == "a" and not results[-1]:
                return False
        return results[0] or results[1] if quantifier == "e" else \
            results[0] and results[1]

    return recurse(0)
