"""Search-based QDPLL — a general-purpose QBF decision procedure.

This implements the classical DPLL lifting for QBF (Cadoli et al. /
Quaffle lineage, the state of the art evaluated by the paper):

* decisions follow the quantifier prefix outside-in;
* unit propagation with *universal reduction*;
* pure-literal rule (existential pures satisfy, universal pures weaken);
* chronological backtracking: a falsified matrix flips the deepest
  untried **existential** decision, a satisfied matrix flips the deepest
  untried **universal** decision.

It is deliberately a faithful baseline rather than a modern solver: the
paper's observation — that general-purpose QBF solvers of this family
collapse on the BMC formulae (2) and (3) while plain SAT handles the
unrolled formula (1) — is exactly the behaviour this implementation
reproduces (experiment E5).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from ..sat.types import (Budget, BudgetExceeded, SolveResult,
                         stop_requested)
from .pcnf import PCNF

__all__ = ["QdpllSolver", "QbfStats"]


class QbfStats:
    """Counters for the QBF experiments."""

    __slots__ = ("decisions", "conflicts", "solutions", "propagations",
                 "backtracks")

    def __init__(self) -> None:
        self.decisions = 0
        self.conflicts = 0
        self.solutions = 0
        self.propagations = 0
        self.backtracks = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class _TrailEntry:
    __slots__ = ("var", "value", "is_decision", "tried_both")

    def __init__(self, var: int, value: bool, is_decision: bool) -> None:
        self.var = var
        self.value = value
        self.is_decision = is_decision
        self.tried_both = False


class QdpllSolver:
    """Decide the truth of a PCNF formula.

    Free matrix variables are treated as outermost existentials, per
    QDIMACS convention.  ``solve`` returns SAT (true), UNSAT (false) or
    UNKNOWN (budget exhausted).
    """

    def __init__(self, pcnf: PCNF) -> None:
        self.pcnf = pcnf
        self.stats = QbfStats()
        self._info = pcnf.var_levels()          # var -> (quant, level)
        # Variables in decision order: outermost first; free vars first.
        self._order = sorted(self._info, key=lambda v: (self._info[v][1], v))
        self._assign: Dict[int, bool] = {}
        self._trail: List[_TrailEntry] = []
        self._clauses: List[Tuple[int, ...]] = [tuple(c)
                                                for c in pcnf.matrix.clauses]
        self._budget = Budget.unlimited()
        self._deadline: float | None = None

    # ------------------------------------------------------------------
    def solve(self, budget: Budget | None = None) -> SolveResult:
        """Run the QDPLL search to completion or budget exhaustion."""
        self._budget = budget or Budget.unlimited()
        if self._budget.deadline is not None:
            # An armed budget shares one deadline across calls.
            self._deadline = self._budget.deadline
        else:
            self._deadline = (time.monotonic() + self._budget.max_seconds
                              if self._budget.max_seconds is not None
                              else None)
        self._assign.clear()
        self._trail.clear()
        if any(len(c) == 0 for c in self._clauses):
            return SolveResult.UNSAT
        try:
            return self._search()
        except BudgetExceeded:
            return SolveResult.UNKNOWN

    def assignment(self) -> Dict[int, bool]:
        """The assignment at termination (meaningful prefix: see caller)."""
        return dict(self._assign)

    # ------------------------------------------------------------------
    def _check_budget(self) -> None:
        b = self._budget
        s = self.stats
        if b.max_decisions is not None and s.decisions >= b.max_decisions:
            raise BudgetExceeded("decisions")
        if b.max_conflicts is not None and \
                s.conflicts + s.solutions >= b.max_conflicts:
            raise BudgetExceeded("conflicts")
        if b.max_propagations is not None and \
                s.propagations >= b.max_propagations:
            raise BudgetExceeded("propagations")
        if self._deadline is not None and time.monotonic() > self._deadline:
            raise BudgetExceeded("time")
        if stop_requested():
            raise BudgetExceeded("cancelled")

    # ------------------------------------------------------------------
    def _search(self) -> SolveResult:
        while True:
            status = self._propagate()
            if status == "open":
                var = self._pick_variable()
                if var == 0:
                    # Everything relevant assigned but matrix not decided:
                    # all clauses must be satisfied (no unassigned literal
                    # left in any open clause) — treat as solution.
                    status = "sat"
                else:
                    self.stats.decisions += 1
                    self._check_budget()
                    self._push(var, False, is_decision=True)
                    continue
            if status == "conflict":
                self.stats.conflicts += 1
                self._check_budget()
                if not self._backtrack("e"):
                    return SolveResult.UNSAT
            else:                                 # "sat"
                self.stats.solutions += 1
                self._check_budget()
                if not self._backtrack("a"):
                    return SolveResult.SAT

    def _push(self, var: int, value: bool, is_decision: bool) -> None:
        self._assign[var] = value
        self._trail.append(_TrailEntry(var, value, is_decision))

    def _backtrack(self, quantifier: str) -> bool:
        """Flip the deepest untried decision of the given quantifier kind.

        Returns False when no such decision exists (search exhausted).
        """
        self.stats.backtracks += 1
        trail = self._trail
        for i in range(len(trail) - 1, -1, -1):
            entry = trail[i]
            if (entry.is_decision and not entry.tried_both
                    and self._info[entry.var][0] == quantifier):
                for later in trail[i + 1:]:
                    del self._assign[later.var]
                del trail[i + 1:]
                entry.value = not entry.value
                entry.tried_both = True
                self._assign[entry.var] = entry.value
                return True
        return False

    # ------------------------------------------------------------------
    def _propagate(self) -> str:
        """Evaluate all clauses; apply unit and pure rules to fixpoint.

        Returns 'conflict', 'sat', or 'open'.
        """
        info = self._info
        assign = self._assign
        while True:
            self.stats.propagations += 1
            implied: List[Tuple[int, bool]] = []
            all_satisfied = True
            phase_seen: Dict[int, int] = {}
            for clause in self._clauses:
                satisfied = False
                remaining: List[int] = []
                for lit in clause:
                    val = assign.get(abs(lit))
                    if val is None:
                        remaining.append(lit)
                    elif val == (lit > 0):
                        satisfied = True
                        break
                if satisfied:
                    continue
                all_satisfied = False
                # Universal reduction on the remaining literals.
                max_e_level = -2
                for lit in remaining:
                    quant, level = info[abs(lit)]
                    if quant == "e" and level > max_e_level:
                        max_e_level = level
                reduced = [lit for lit in remaining
                           if info[abs(lit)][0] == "e"
                           or info[abs(lit)][1] < max_e_level]
                if not reduced:
                    return "conflict"
                existentials = [l for l in reduced if info[abs(l)][0] == "e"]
                if len(reduced) == 1 and existentials:
                    implied.append((abs(reduced[0]), reduced[0] > 0))
                # Track phases for the pure-literal rule.
                for lit in remaining:
                    v = abs(lit)
                    s = 1 if lit > 0 else -1
                    prev = phase_seen.get(v)
                    if prev is None:
                        phase_seen[v] = s
                    elif prev != s:
                        phase_seen[v] = 0
            if all_satisfied:
                return "sat"
            if implied:
                for var, value in implied:
                    prev = assign.get(var)
                    if prev is None:
                        self._push(var, value, is_decision=False)
                    elif prev != value:
                        return "conflict"
                continue
            # Pure-literal rule (only when no units fired).
            pures: List[Tuple[int, bool]] = []
            for var, s in phase_seen.items():
                if s == 0 or var in assign:
                    continue
                quant, _ = info[var]
                if quant == "e":
                    pures.append((var, s > 0))   # satisfy the clauses
                else:
                    pures.append((var, s < 0))   # weaken them (adversary)
            if pures:
                for var, value in pures:
                    if var not in assign:
                        self._push(var, value, is_decision=False)
                continue
            return "open"

    def _pick_variable(self) -> int:
        """Next unassigned variable in prefix order, 0 if none left.

        Variables that no longer occur in any open clause are skipped
        (their value cannot matter), which also guarantees progress.
        """
        open_vars: set[int] = set()
        for clause in self._clauses:
            satisfied = False
            unassigned: List[int] = []
            for lit in clause:
                val = self._assign.get(abs(lit))
                if val is None:
                    unassigned.append(abs(lit))
                elif val == (lit > 0):
                    satisfied = True
                    break
            if not satisfied:
                open_vars.update(unassigned)
        for var in self._order:
            if var not in self._assign and var in open_vars:
                return var
        return 0
