"""Array-based CDCL kernel: the fast engine behind ``make_solver``.

:class:`KernelSolver` re-implements the public surface of the pure
reference solver (:class:`repro.sat.solver.CdclSolver`) on a flat,
DIMACS-oriented clause database instead of per-clause Python objects:

* **clause arena** — every non-binary clause lives in one flat int
  list (``[proof_id, lbd, flags, size, lit0, lit1, ...]``); a clause
  reference is the arena index of its first literal, so propagation
  and analysis touch plain list slots, never object attributes;
* **binary specialization** — two-literal clauses (the bulk of any
  Tseitin encoding, and every activation-guard clause) skip the arena
  entirely: each literal carries a direct implication list, and a
  binary reason is encoded in-place as a negative reason word;
* **lazy watcher lists with blocker literals** — each watch entry
  carries a cached *blocker*; a satisfied blocker skips the clause
  without touching the arena, and watcher lists are compacted in place
  (no per-propagation list rebuild);
* **EVSIDS branching with decay and phase saving** — exponential
  activity bumps with periodic rescale, lazy heap entries, and the
  last-assigned polarity re-used at decisions;
* **reluctant-doubling restarts** — Knuth's (u, v) pair, generating
  the Luby sequence without the arithmetic of the closed form;
* **LBD-aged learnt-clause GC** — the learnt database is halved by
  literal-block distance (glue clauses and binaries are kept), and
  the arena is compacted once the dead-clause waste dominates.

The engine is selected through :func:`make_solver` (flag ``solver=
"kernel"|"reference"`` on every backend, env ``REPRO_SAT_KERNEL``);
semantics are pinned to the reference implementation by the
differential suite in ``tests/test_kernel_differential.py`` — both
engines must return identical verdicts on every workload, and the
kernel logs the same resolution/DRAT proof steps the reference does,
so UNSAT cores, Craig interpolation and proof checking work unchanged.
"""

from __future__ import annotations

import ctypes
import time
from heapq import heappop, heappush
from typing import Dict, Iterable, List, Optional, Sequence

from ..telemetry.metrics import current_metrics
from ..telemetry.trace import current_tracer
from . import ckernel as _ckernel
from .proof import ResolutionProof
from .solver import CdclSolver, SolverStats
from .types import (Budget, BudgetExceeded, SolveResult, from_internal,
                    resolve_engine, stop_check_installed, stop_requested,
                    to_internal)

__all__ = ["KernelSolver", "make_solver"]

# Arena layout: header words live *before* the clause reference.
_H_PROOF = -4            # proof id (-1 when no proof is attached)
_H_LBD = -3              # literal-block distance (0 for problem clauses)
_H_FLAGS = -2            # bit 0: learnt, bit 1: deleted
_H_SIZE = -1             # number of literals
_HEADER = 4
_LEARNT = 1
_DELETED = 2

_UNLIMITED = 1 << 62     # sentinel for "no countable budget limit"


def _bkey(a: int, b: int) -> int:
    """Order-independent dictionary key for a binary clause."""
    return (a << 32) | b if a < b else (b << 32) | a


class KernelSolver:
    """Array-based CDCL solver (drop-in for :class:`CdclSolver`).

    Example
    -------
    >>> s = KernelSolver()
    >>> s.add_clause([1, 2])
    True
    >>> s.add_clause([-1, 2])
    True
    >>> s.solve() is SolveResult.SAT
    True
    >>> s.model_value(2)
    True
    """

    engine = "kernel"
    backend = "interpreted"

    def __new__(cls, proof: ResolutionProof | None = None):
        """Dispatch to the compiled core when it applies.

        Proof-free solves go to the C core (when a compiler was
        available); proof-logged solves and no-compiler environments
        use the pure-Python array path below.  Both are the same
        engine — the differential suite pins them to each other and
        to the reference solver.
        """
        if cls is KernelSolver and proof is None \
                and _ckernel.load_core() is not None:
            return object.__new__(_CKernelSolver)
        return object.__new__(cls)

    def __init__(self, proof: ResolutionProof | None = None) -> None:
        self.proof = proof
        self.ok = True
        self.stats = SolverStats()
        self._nvars = 0
        # Per-literal (index 2v / 2v+1; slots 0-1 unused):
        self._vals: List[int] = [0, 0]        # 1 true, -1 false, 0 unassigned
        self._bins: List[List[int]] = [[], []]   # direct binary implications
        self._wc: List[List[int]] = [[], []]  # watched clause refs
        self._wb: List[List[int]] = [[], []]  # blocker literals
        # Per-variable (slot 0 unused):
        self._level: List[int] = [0]
        self._reason: List[int] = [0]         # cref > 0 | -other (binary) | 0
        self._act: List[float] = [0.0]
        self._pol: List[int] = [1]            # saved phase bit (1 = negative)
        self._seen: List[int] = [0]           # scratch for analyze
        self._unit_proof: List[int] = [-1]    # proof id of level-0 units
        # Clause database:
        self._arena: List[int] = [0] * _HEADER
        self._crefs: List[int] = []           # long problem clauses
        self._lrefs: List[int] = []           # long learnt clauses
        self._bin_pairs: List[List[int]] = []  # [a, b, learnt, alive]
        self._bin_proof: Dict[int, int] = {}  # _bkey -> proof id
        self._n_bin_problem = 0
        self._n_bin_learnt = 0
        self._wasted = 0                      # dead arena words
        # Search state:
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._heap: List[tuple] = []
        self._var_inc = 1.0
        self._var_decay = 1.0 / 0.95
        self._model: List[int] = []
        self._core: List[int] = []
        self._bin_conflict = (0, 0)
        self._deadline: float | None = None
        self._lim_conflicts = _UNLIMITED
        self._lim_decisions = _UNLIMITED
        self._lim_propagations = _UNLIMITED
        self._lim_literals = _UNLIMITED
        self._run_conflicts = 0
        self._run_decisions = 0
        self._empty_clause_proof = -1

    # ==================================================================
    # Variables
    # ==================================================================
    def new_var(self) -> int:
        """Allocate a fresh variable; returns its DIMACS index."""
        self._nvars += 1
        self._vals.extend((0, 0))
        self._bins.append([])
        self._bins.append([])
        self._wc.append([])
        self._wc.append([])
        self._wb.append([])
        self._wb.append([])
        self._level.append(0)
        self._reason.append(0)
        self._act.append(0.0)
        self._pol.append(1)
        self._seen.append(0)
        self._unit_proof.append(-1)
        heappush(self._heap, (-0.0, self._nvars))
        return self._nvars

    def ensure_vars(self, up_to: int) -> None:
        """Make sure variables ``1..up_to`` exist."""
        while self._nvars < up_to:
            self.new_var()

    @property
    def num_vars(self) -> int:
        """Number of allocated variables."""
        return self._nvars

    def fixed_value(self, dimacs_lit: int) -> Optional[bool]:
        """Value of a literal fixed at decision level 0, else None."""
        v = abs(dimacs_lit)
        if v > self._nvars:
            return None
        a = self._vals[2 * v]
        if a == 0 or self._level[v] != 0:
            return None
        val = a > 0
        return val if dimacs_lit > 0 else not val

    def set_default_phase(self, dimacs_var: int, phase: bool) -> None:
        """Seed the saved phase of a variable (decision polarity hint)."""
        self.ensure_vars(abs(dimacs_var))
        self._pol[abs(dimacs_var)] = 0 if phase else 1

    # ==================================================================
    # Clauses
    # ==================================================================
    def add_clause(self, dimacs_lits: Iterable[int]) -> bool:
        """Add a clause; returns False iff the formula is now UNSAT.

        The solver backtracks to decision level 0 before adding.
        """
        self._cancel_until(0)
        if not self.ok:
            return False
        lits = sorted({to_internal(l) for l in dimacs_lits})
        for l in lits:
            self.ensure_vars(l >> 1)
        proof_id = -1
        proof_on = self.proof is not None
        if proof_on:
            proof_id = self.proof.add_input(
                [from_internal(l) for l in lits])

        vals = self._vals
        out: List[int] = []
        strip_chain: List[tuple] = []
        prev = 0
        for l in lits:
            if prev != 0 and (l ^ 1) == prev:
                return True                     # tautology: drop
            prev = l
            val = vals[l]
            if val > 0:
                return True                     # satisfied at level 0
            if val < 0:
                strip_chain.append((self._unit_proof[l >> 1], l >> 1))
                continue                        # false at level 0: strip
            out.append(l)
        if proof_on and strip_chain:
            proof_id = self.proof.add_derived(
                proof_id, strip_chain, [from_internal(l) for l in out])

        if not out:
            self.ok = False
            self._empty_clause_proof = proof_id
            return False
        if len(out) == 1:
            self._enqueue(out[0], 0, unit_proof=proof_id)
            conflict = self._propagate()
            if conflict != 0:
                self.ok = False
                self._log_final_conflict(conflict)
                return False
            return True
        if len(out) == 2:
            self._add_binary(out[0], out[1], learnt=False,
                             proof_id=proof_id)
            return True
        cref = self._push_arena(out, learnt=False, proof_id=proof_id)
        self._crefs.append(cref)
        self._attach(cref, out[0], out[1])
        return True

    def add_clauses(self, clause_list: Iterable[Iterable[int]]) -> bool:
        """Add many clauses; returns False if the formula became UNSAT."""
        result = True
        for lits in clause_list:
            if not self.add_clause(lits):
                result = False
        return result

    def _push_arena(self, lits: Sequence[int], learnt: bool,
                    proof_id: int, lbd: int = 0) -> int:
        arena = self._arena
        arena.append(proof_id)
        arena.append(lbd)
        arena.append(_LEARNT if learnt else 0)
        arena.append(len(lits))
        cref = len(arena)
        arena.extend(lits)
        return cref

    def _add_binary(self, a: int, b: int, learnt: bool,
                    proof_id: int) -> None:
        self._bins[a ^ 1].append(b)
        self._bins[b ^ 1].append(a)
        self._bin_pairs.append([a, b, 1 if learnt else 0, 1])
        if learnt:
            self._n_bin_learnt += 1
        else:
            self._n_bin_problem += 1
        if self.proof is not None:
            self._bin_proof[_bkey(a, b)] = proof_id
        self.stats.db_literals += 2
        if self.stats.db_literals > self.stats.peak_db_literals:
            self.stats.peak_db_literals = self.stats.db_literals

    def _attach(self, cref: int, l0: int, l1: int) -> None:
        self._wc[l0].append(cref)
        self._wb[l0].append(l1)
        self._wc[l1].append(cref)
        self._wb[l1].append(l0)
        size = self._arena[cref + _H_SIZE]
        self.stats.db_literals += size
        if self.stats.db_literals > self.stats.peak_db_literals:
            self.stats.peak_db_literals = self.stats.db_literals

    def _detach(self, cref: int) -> None:
        """Remove a long clause's two watch entries (swap-pop)."""
        arena = self._arena
        for w in (arena[cref], arena[cref + 1]):
            ws = self._wc[w]
            try:
                i = ws.index(cref)
            except ValueError:      # pragma: no cover - defensive
                continue
            bs = self._wb[w]
            ws[i] = ws[-1]
            bs[i] = bs[-1]
            ws.pop()
            bs.pop()
        self.stats.db_literals -= arena[cref + _H_SIZE]

    def _delete_clause(self, cref: int) -> None:
        arena = self._arena
        self._detach(cref)
        arena[cref + _H_FLAGS] |= _DELETED
        self._wasted += arena[cref + _H_SIZE] + _HEADER

    def purge_satisfied(self) -> int:
        """Physically delete clauses satisfied at level 0.

        Implements jSAT-style clause retraction: after a group literal
        is retired with ``add_clause([-g])``, every clause carrying
        ``-g`` is satisfied at level 0 and reclaimed here.  Returns
        the number of clauses purged.
        """
        self._cancel_until(0)
        vals = self._vals
        level = self._level
        arena = self._arena
        purged = 0
        # Level-0 reasons are never consulted again (conflict analysis
        # skips level-0 literals); clearing them unpins every clause.
        for lit in self._trail:
            self._reason[lit >> 1] = 0
        # Binary clauses.
        kept_pairs: List[List[int]] = []
        bins_dirty = False
        for pair in self._bin_pairs:
            a, b = pair[0], pair[1]
            if (vals[a] > 0 and level[a >> 1] == 0) or \
                    (vals[b] > 0 and level[b >> 1] == 0):
                purged += 1
                bins_dirty = True
                self.stats.db_literals -= 2
                if pair[2]:
                    self._n_bin_learnt -= 1
                else:
                    self._n_bin_problem -= 1
                self._bin_proof.pop(_bkey(a, b), None)
            else:
                kept_pairs.append(pair)
        if bins_dirty:
            self._bin_pairs = kept_pairs
            for lst in self._bins:
                del lst[:]
            for a, b, _learnt, _alive in kept_pairs:
                self._bins[a ^ 1].append(b)
                self._bins[b ^ 1].append(a)
        # Long clauses.
        for store in (self._crefs, self._lrefs):
            for cref in store:
                if arena[cref + _H_FLAGS] & _DELETED:
                    continue
                for i in range(cref, cref + arena[cref + _H_SIZE]):
                    l = arena[i]
                    if vals[l] > 0 and level[l >> 1] == 0:
                        self._delete_clause(cref)
                        purged += 1
                        break
        self._compact()
        self.stats.purged += purged
        return purged

    def _compact(self) -> None:
        """Rebuild the arena without dead clauses; remap refs/reasons."""
        arena = self._arena
        new_arena: List[int] = [0] * _HEADER
        remap: Dict[int, int] = {}
        for store in (self._crefs, self._lrefs):
            kept: List[int] = []
            for cref in store:
                if arena[cref + _H_FLAGS] & _DELETED:
                    continue
                size = arena[cref + _H_SIZE]
                new_arena.extend(arena[cref - _HEADER:cref + size])
                ncref = len(new_arena) - size
                remap[cref] = ncref
                kept.append(ncref)
            store[:] = kept
        self._arena = new_arena
        self._wasted = 0
        reason = self._reason
        for lit in self._trail:
            r = reason[lit >> 1]
            if r > 0:
                reason[lit >> 1] = remap[r]
        for lit in range(2, 2 * self._nvars + 2):
            del self._wc[lit][:]
            del self._wb[lit][:]
        arena = new_arena
        for store in (self._crefs, self._lrefs):
            for cref in store:
                l0 = arena[cref]
                l1 = arena[cref + 1]
                self._wc[l0].append(cref)
                self._wb[l0].append(l1)
                self._wc[l1].append(cref)
                self._wb[l1].append(l0)

    # ==================================================================
    # Trail
    # ==================================================================
    def _enqueue(self, lit: int, reason: int, unit_proof: int = -1) -> None:
        """Assign ``lit`` true with the given reason word (cold path)."""
        v = lit >> 1
        self._vals[lit] = 1
        self._vals[lit ^ 1] = -1
        self._level[v] = len(self._trail_lim)
        self._reason[v] = reason
        self._trail.append(lit)
        if self.proof is not None and not self._trail_lim:
            self._record_unit_proof(lit, reason, unit_proof)

    def _reason_lits(self, lit: int, reason: int) -> Sequence[int]:
        """The literals of the reason clause that implied ``lit``."""
        if reason > 0:
            arena = self._arena
            return arena[reason:reason + arena[reason + _H_SIZE]]
        return (lit, -reason)

    def _reason_proof_id(self, lit: int, reason: int) -> int:
        if reason > 0:
            return self._arena[reason + _H_PROOF]
        return self._bin_proof.get(_bkey(lit, -reason), -1)

    def _record_unit_proof(self, lit: int, reason: int,
                           unit_proof: int) -> None:
        v = lit >> 1
        if unit_proof >= 0:
            self._unit_proof[v] = unit_proof
            return
        if reason == 0:
            return
        unit = self._unit_proof
        chain = [(unit[q >> 1], q >> 1)
                 for q in self._reason_lits(lit, reason) if q != lit]
        start = self._reason_proof_id(lit, reason)
        if chain:
            unit[v] = self.proof.add_derived(
                start, chain, [from_internal(lit)])
        else:
            unit[v] = start

    def _cancel_until(self, target_level: int) -> None:
        lim = self._trail_lim
        if len(lim) <= target_level:
            return
        boundary = lim[target_level]
        trail = self._trail
        vals = self._vals
        pol = self._pol
        reason = self._reason
        act = self._act
        heap = self._heap
        for i in range(len(trail) - 1, boundary - 1, -1):
            lit = trail[i]
            v = lit >> 1
            pol[v] = lit & 1
            vals[lit] = 0
            vals[lit ^ 1] = 0
            reason[v] = 0
            heappush(heap, (-act[v], v))
        del trail[boundary:]
        del lim[target_level:]
        if self._qhead > boundary:
            self._qhead = boundary

    # ==================================================================
    # Propagation
    # ==================================================================
    def _propagate(self) -> int:
        """Unit propagation; returns the conflicting clause ref.

        The return value is a long-clause arena ref, ``-1`` for a
        binary-clause conflict (the pair is left in
        ``self._bin_conflict``), or ``0`` for no conflict.
        """
        trail = self._trail
        vals = self._vals
        arena = self._arena
        wcs = self._wc
        wbs = self._wb
        bins = self._bins
        level = self._level
        reason = self._reason
        qhead = self._qhead
        start = qhead
        dl = len(self._trail_lim)
        rec = self.proof is not None and dl == 0
        confl = 0
        while qhead < len(trail):
            p = trail[qhead]
            qhead += 1
            bl = bins[p]
            if bl:
                np = -(p ^ 1)
                for b in bl:
                    vb = vals[b]
                    if vb > 0:
                        continue
                    if vb == 0:
                        vals[b] = 1
                        vals[b ^ 1] = -1
                        level[b >> 1] = dl
                        reason[b >> 1] = np
                        trail.append(b)
                        if rec:
                            self._record_unit_proof(b, np, -1)
                    else:
                        self._bin_conflict = (b, p ^ 1)
                        confl = -1
                        break
                if confl:
                    break
            flit = p ^ 1
            ws = wcs[flit]
            if not ws:
                continue
            bs = wbs[flit]
            i = j = 0
            n = len(ws)
            while i < n:
                blk = bs[i]
                if vals[blk] > 0:
                    if i != j:
                        ws[j] = ws[i]
                        bs[j] = blk
                    i += 1
                    j += 1
                    continue
                cref = ws[i]
                i += 1
                first = arena[cref]
                if first == flit:
                    first = arena[cref + 1]
                    arena[cref] = first
                    arena[cref + 1] = flit
                fv = vals[first]
                if fv > 0:
                    ws[j] = cref
                    bs[j] = first
                    j += 1
                    continue
                k = cref + 2
                end = cref + arena[cref + _H_SIZE]
                while k < end:
                    q = arena[k]
                    if vals[q] >= 0:
                        break
                    k += 1
                if k < end:
                    arena[cref + 1] = q
                    arena[k] = flit
                    wcs[q].append(cref)
                    wbs[q].append(first)
                    continue
                ws[j] = cref
                bs[j] = first
                j += 1
                if fv < 0:
                    confl = cref
                    while i < n:
                        ws[j] = ws[i]
                        bs[j] = bs[i]
                        i += 1
                        j += 1
                    break
                vals[first] = 1
                vals[first ^ 1] = -1
                level[first >> 1] = dl
                reason[first >> 1] = cref
                trail.append(first)
                if rec:
                    self._record_unit_proof(first, cref, -1)
            del ws[j:]
            del bs[j:]
            if confl:
                break
        self._qhead = qhead
        self.stats.propagations += qhead - start
        return confl

    # ==================================================================
    # Conflict analysis
    # ==================================================================
    def _bump_var(self, v: int) -> None:
        act = self._act
        a = act[v] + self._var_inc
        act[v] = a
        if a > 1e100:
            self._rescale_activity()
        elif self._vals[2 * v] == 0:
            heappush(self._heap, (-a, v))

    def _rescale_activity(self) -> None:
        act = self._act
        vals = self._vals
        for i in range(1, self._nvars + 1):
            act[i] *= 1e-100
        self._var_inc *= 1e-100
        fresh = [(-act[v], v) for v in range(1, self._nvars + 1)
                 if vals[2 * v] == 0]
        fresh.sort()
        self._heap = fresh

    def _conflict_lits(self, confl: int) -> Sequence[int]:
        if confl == -1:
            return self._bin_conflict
        arena = self._arena
        return arena[confl:confl + arena[confl + _H_SIZE]]

    def _conflict_proof_id(self, confl: int) -> int:
        if confl == -1:
            a, b = self._bin_conflict
            return self._bin_proof.get(_bkey(a, b), -1)
        return self._arena[confl + _H_PROOF]

    def _analyze(self, confl: int) -> tuple:
        """First-UIP analysis.

        Returns ``(learnt_lits, backtrack_level, proof_id)`` where
        ``learnt_lits[0]`` is the asserting literal.
        """
        level = self._level
        seen = self._seen
        act = self._act
        vals = self._vals
        heap = self._heap
        var_inc = self._var_inc
        trail = self._trail
        reason = self._reason
        proof_on = self.proof is not None

        learnt: List[int] = [0]
        touched: List[int] = []
        path_count = 0
        p = -1
        index = len(trail) - 1
        current_level = len(self._trail_lim)
        chain: List[tuple] = []
        start_id = self._conflict_proof_id(confl) if proof_on else -1
        clits = self._conflict_lits(confl)

        while True:
            for q in clits:
                if q == p:
                    continue
                v = q >> 1
                if seen[v]:
                    continue
                lv = level[v]
                if lv == 0:
                    if proof_on:
                        chain.append((self._unit_proof[v], v))
                    continue
                seen[v] = 1
                touched.append(v)
                a = act[v] + var_inc
                act[v] = a
                if a > 1e100:
                    self._var_inc = var_inc
                    self._rescale_activity()
                    var_inc = self._var_inc
                    heap = self._heap
                elif vals[2 * v] == 0:
                    heappush(heap, (-a, v))
                if lv >= current_level:
                    path_count += 1
                else:
                    learnt.append(q)
            while not seen[trail[index] >> 1]:
                index -= 1
            p = trail[index]
            index -= 1
            v = p >> 1
            seen[v] = 0
            path_count -= 1
            if path_count == 0:
                break
            r = reason[v]
            clits = self._reason_lits(p, r)
            if proof_on:
                chain.append((self._reason_proof_id(p, r), v))
        learnt[0] = p ^ 1

        learnt, chain = self._minimize(learnt, chain)

        for v in touched:
            seen[v] = 0

        if len(learnt) == 1:
            bt_level = 0
        else:
            max_i = 1
            for i in range(2, len(learnt)):
                if level[learnt[i] >> 1] > level[learnt[max_i] >> 1]:
                    max_i = i
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
            bt_level = level[learnt[1] >> 1]

        proof_id = -1
        if proof_on:
            proof_id = self.proof.add_derived(
                start_id, chain, [from_internal(l) for l in learnt])
        return learnt, bt_level, proof_id

    def _minimize(self, learnt: List[int], chain: List[tuple]) -> tuple:
        """Basic (non-recursive) clause minimization.

        A literal is redundant if its reason's other literals are all
        in the learnt clause or fixed at level 0.
        """
        seen = self._seen
        level = self._level
        reason = self._reason
        for l in learnt[1:]:
            seen[l >> 1] = 1
        kept = [learnt[0]]
        removed_chain: List[tuple] = []
        proof_on = self.proof is not None
        for l in learnt[1:]:
            v = l >> 1
            r = reason[v]
            if r == 0:
                kept.append(l)
                continue
            rlits = self._reason_lits(l ^ 1, r)
            redundant = True
            for q in rlits:
                qv = q >> 1
                if qv == v:
                    continue
                if not seen[qv] and level[qv] > 0:
                    redundant = False
                    break
            if redundant:
                self.stats.minimized_literals += 1
                if proof_on:
                    removed_chain.append((self._reason_proof_id(l ^ 1, r), v))
                    for q in rlits:
                        qv = q >> 1
                        if qv != v and level[qv] == 0:
                            removed_chain.append((self._unit_proof[qv], qv))
                seen[v] = 0
            else:
                kept.append(l)
        return kept, chain + removed_chain

    def _log_final_conflict(self, confl: int) -> None:
        """Derive the empty clause when a conflict occurs at level 0."""
        if self.proof is None:
            return
        unit = self._unit_proof
        chain = [(unit[q >> 1], q >> 1) for q in self._conflict_lits(confl)]
        self._empty_clause_proof = self.proof.add_derived(
            self._conflict_proof_id(confl), chain, [])

    @property
    def empty_clause_proof(self) -> int:
        """Proof id of the derived empty clause (UNSAT runs only)."""
        return self._empty_clause_proof

    # ==================================================================
    # Learnt clause management
    # ==================================================================
    def _learn(self, lits: List[int], proof_id: int) -> None:
        self.stats.learned += 1
        if len(lits) == 1:
            self._enqueue(lits[0], 0, unit_proof=proof_id)
            return
        if len(lits) == 2:
            self._add_binary(lits[0], lits[1], learnt=True,
                             proof_id=proof_id)
            self._enqueue(lits[0], -lits[1])
            return
        level = self._level
        lbd = len({level[l >> 1] for l in lits})
        cref = self._push_arena(lits, learnt=True, proof_id=proof_id,
                                lbd=lbd)
        self._lrefs.append(cref)
        self._attach(cref, lits[0], lits[1])
        self._enqueue(lits[0], cref)

    def _reduce_db(self) -> None:
        """Delete roughly half of the long learnt clauses (high LBD
        first; glue clauses, binaries and locked reasons survive)."""
        arena = self._arena
        locked = set()
        for lit in self._trail:
            r = self._reason[lit >> 1]
            if r > 0:
                locked.add(r)
        alive = [c for c in self._lrefs
                 if not arena[c + _H_FLAGS] & _DELETED]
        # High LBD first; ties broken oldest-first (smaller ref).
        alive.sort(key=lambda c: (-arena[c + _H_LBD], c))
        target = len(alive) // 2
        kept: List[int] = []
        for idx, cref in enumerate(alive):
            if idx < target and arena[cref + _H_LBD] > 2 \
                    and cref not in locked:
                self._delete_clause(cref)
                self.stats.deleted += 1
            else:
                kept.append(cref)
        self._lrefs = kept
        if self._wasted * 2 > len(arena):
            self._compact()

    # ==================================================================
    # Decisions
    # ==================================================================
    def _pick_branch_var(self) -> int:
        heap = self._heap
        act = self._act
        vals = self._vals
        while heap:
            na, v = heappop(heap)
            if vals[2 * v] == 0 and -na == act[v]:
                return v
        fresh = [(-act[v], v) for v in range(1, self._nvars + 1)
                 if vals[2 * v] == 0]
        if not fresh:
            return 0
        fresh.sort()
        self._heap = fresh
        na, v = heappop(fresh)
        return v

    # ==================================================================
    # Main solve loop
    # ==================================================================
    def solve(self, assumptions: Sequence[int] = (),
              budget: Budget | None = None) -> SolveResult:
        """Decide satisfiability under the given assumptions.

        Returns SAT / UNSAT / UNKNOWN (budget exhausted).  After SAT,
        :meth:`model_value` reads the model; after UNSAT under
        assumptions, :meth:`core` gives the failed-assumption subset.
        Emits the same ``sat.solve`` telemetry span and counters as the
        reference engine.
        """
        tracer = current_tracer()
        registry = current_metrics()
        if not tracer.enabled and not registry.enabled:
            return self._solve(assumptions, budget)

        stats = self.stats
        before = (stats.conflicts, stats.decisions, stats.propagations,
                  stats.restarts, stats.learned)
        start = time.monotonic()
        with tracer.span("sat.solve", assumptions=len(assumptions),
                         engine=self.engine) as sp:
            result = self._solve(assumptions, budget)
            sp.set(result=result.name,
                   conflicts=stats.conflicts - before[0],
                   decisions=stats.decisions - before[1],
                   propagations=stats.propagations - before[2],
                   db_literals=stats.db_literals)
        registry.inc("sat.solve_calls")
        registry.inc("sat.conflicts", stats.conflicts - before[0])
        registry.inc("sat.decisions", stats.decisions - before[1])
        registry.inc("sat.propagations", stats.propagations - before[2])
        registry.inc("sat.restarts", stats.restarts - before[3])
        registry.inc("sat.learned", stats.learned - before[4])
        registry.gauge("sat.db_literals", stats.db_literals)
        registry.gauge_max("sat.peak_db_literals", stats.peak_db_literals)
        registry.observe("sat.solve_seconds", time.monotonic() - start)
        return result

    def _solve(self, assumptions: Sequence[int] = (),
               budget: Budget | None = None) -> SolveResult:
        """Uninstrumented body of :meth:`solve`."""
        self.stats.solve_calls += 1
        b = budget or Budget.unlimited()
        if b.deadline is not None:
            self._deadline = b.deadline
        else:
            self._deadline = (time.monotonic() + b.max_seconds
                              if b.max_seconds is not None else None)
        self._lim_conflicts = (b.max_conflicts
                               if b.max_conflicts is not None
                               else _UNLIMITED)
        self._lim_decisions = (b.max_decisions
                               if b.max_decisions is not None
                               else _UNLIMITED)
        self._lim_propagations = (b.max_propagations
                                  if b.max_propagations is not None
                                  else _UNLIMITED)
        self._lim_literals = (b.max_literals
                              if b.max_literals is not None
                              else _UNLIMITED)
        self._run_conflicts = 0
        self._run_decisions = 0
        self._model = []
        self._core = []
        # An already-expired deadline (or a pending cancellation) must
        # stop the call here: easy queries can be decided purely by
        # level-0 propagation, which never reaches the in-search
        # budget checkpoints.
        if (self._deadline is not None
                and time.monotonic() > self._deadline) or stop_requested():
            self._deadline = None
            return SolveResult.UNKNOWN
        self._cancel_until(0)
        if not self.ok:
            return SolveResult.UNSAT
        conflict = self._propagate()
        if conflict != 0:
            self.ok = False
            self._log_final_conflict(conflict)
            return SolveResult.UNSAT

        internal = [to_internal(l) for l in assumptions]
        for l in internal:
            self.ensure_vars(l >> 1)
        try:
            return self._search(internal)
        except BudgetExceeded:
            self._cancel_until(0)
            return SolveResult.UNKNOWN
        finally:
            self._deadline = None
            self._lim_conflicts = _UNLIMITED
            self._lim_decisions = _UNLIMITED
            self._lim_propagations = _UNLIMITED
            self._lim_literals = _UNLIMITED

    def _check_budget(self) -> None:
        """Raise BudgetExceeded when any armed limit has run out.

        Consulted at every conflict and decision checkpoint, exactly
        like the reference engine — including the cooperative
        cancellation probe installed by :func:`install_stop_check`.
        """
        if self._run_conflicts >= self._lim_conflicts:
            raise BudgetExceeded("conflicts")
        if self._run_decisions >= self._lim_decisions:
            raise BudgetExceeded("decisions")
        if self.stats.propagations >= self._lim_propagations:
            raise BudgetExceeded("propagations")
        if self.stats.db_literals >= self._lim_literals:
            raise BudgetExceeded("memory")
        if self._deadline is not None \
                and time.monotonic() > self._deadline:
            raise BudgetExceeded("time")
        if stop_requested():
            raise BudgetExceeded("cancelled")

    def _search(self, assumptions: List[int]) -> SolveResult:
        stats = self.stats
        vals = self._vals
        pol = self._pol
        trail = self._trail
        trail_lim = self._trail_lim
        # Knuth's reluctant-doubling pair: v follows the Luby sequence.
        ru, rv = 1, 1
        conflict_limit = 100 * rv
        episode_conflicts = 0
        max_learnts = max(1000, (len(self._crefs)
                                 + self._n_bin_problem) // 3)
        while True:
            confl = self._propagate()
            if confl != 0:
                episode_conflicts += 1
                self._run_conflicts += 1
                stats.conflicts += 1
                if not trail_lim:
                    self.ok = False
                    self._log_final_conflict(confl)
                    return SolveResult.UNSAT
                learnt, bt_level, proof_id = self._analyze(confl)
                self._cancel_until(bt_level)
                self._learn(learnt, proof_id)
                self._var_inc *= self._var_decay
                self._check_budget()
                continue

            if episode_conflicts >= conflict_limit:
                # Restart: reluctant doubling advances (u, v).
                stats.restarts += 1
                self._cancel_until(0)
                if ru & -ru == rv:
                    ru, rv = ru + 1, 1
                else:
                    rv *= 2
                conflict_limit = 100 * rv
                episode_conflicts = 0
                if len(self._lrefs) > max_learnts:
                    max_learnts = int(max_learnts * 1.3)
                continue
            if len(self._lrefs) - len(trail) > max_learnts:
                self._reduce_db()

            # Place the next assumption (MiniSat style: one decision
            # level per assumption, dummy level if already true).
            next_lit = 0
            while len(trail_lim) < len(assumptions):
                lit = assumptions[len(trail_lim)]
                val = vals[lit]
                if val > 0:
                    trail_lim.append(len(trail))
                elif val < 0:
                    self._core = self._analyze_assumption_conflict(lit)
                    return SolveResult.UNSAT
                else:
                    next_lit = lit
                    break
            if next_lit == 0:
                v = self._pick_branch_var()
                if v == 0:
                    self._save_model()
                    return SolveResult.SAT
                next_lit = 2 * v + pol[v]
            stats.decisions += 1
            self._run_decisions += 1
            self._check_budget()
            trail_lim.append(len(trail))
            v = next_lit >> 1
            vals[next_lit] = 1
            vals[next_lit ^ 1] = -1
            self._level[v] = len(trail_lim)
            self._reason[v] = 0
            trail.append(next_lit)

    def _save_model(self) -> None:
        # vals[2::2] is exactly the positive-literal value of each
        # variable 1..n, in order — one C-speed slice.
        self._model = [0] + self._vals[2::2]

    def _analyze_assumption_conflict(self, failed_lit: int) -> List[int]:
        """Failed-assumption core (MiniSat ``analyzeFinal``)."""
        core = {from_internal(failed_lit)}
        level = self._level
        reason = self._reason
        seen = [False] * (self._nvars + 1)
        seen[failed_lit >> 1] = True
        trail = self._trail
        for i in range(len(trail) - 1, -1, -1):
            lit = trail[i]
            v = lit >> 1
            if not seen[v]:
                continue
            r = reason[v]
            if r == 0:
                if level[v] > 0:
                    core.add(from_internal(lit))
            else:
                for q in self._reason_lits(lit, r):
                    if (q >> 1) != v and level[q >> 1] > 0:
                        seen[q >> 1] = True
            seen[v] = False
        return sorted(core, key=abs)

    # ==================================================================
    # Result inspection
    # ==================================================================
    def model_value(self, dimacs_var: int) -> Optional[bool]:
        """Value of a variable in the last model (None if unassigned)."""
        v = abs(dimacs_var)
        if not self._model or v >= len(self._model):
            return None
        a = self._model[v]
        if a == 0:
            return None
        return (a > 0) if dimacs_var > 0 else (a < 0)

    def model(self) -> Dict[int, bool]:
        """The last satisfying assignment as var -> bool."""
        return {v: self._model[v] > 0
                for v in range(1, len(self._model))
                if self._model[v] != 0}

    def core(self) -> List[int]:
        """Failed assumption literals of the last UNSAT-under-assumptions
        call (a subset of the assumptions, in DIMACS form)."""
        return list(self._core)

    def num_clauses(self) -> int:
        """Number of attached problem clauses (excludes learnt)."""
        arena = self._arena
        longs = sum(1 for c in self._crefs
                    if not arena[c + _H_FLAGS] & _DELETED)
        return longs + self._n_bin_problem

    def num_learnts(self) -> int:
        """Number of learnt clauses currently retained in the database."""
        arena = self._arena
        longs = sum(1 for c in self._lrefs
                    if not arena[c + _H_FLAGS] & _DELETED)
        return longs + self._n_bin_learnt


# ----------------------------------------------------------------------
# Compiled backend (ckernel.c via ctypes)
# ----------------------------------------------------------------------
#: Live cancellation probe handed across the FFI boundary.  Must stay
#: referenced at module level so the ctypes thunk is never collected.
_STOP_PROBE = _ckernel.STOP_CB(lambda: 1 if stop_requested() else 0)


def _lim(value: int | None) -> int:
    return _UNLIMITED if value is None else value


class _CKernelStats:
    """``SolverStats`` facade reading counters live from the C core.

    Exposes exactly the reference counter vocabulary (every
    ``SolverStats`` slot, same names) so telemetry and budget-slicing
    callers never notice which backend produced the numbers.
    """

    _IDX = {"conflicts": 0, "decisions": 1, "propagations": 2,
            "restarts": 3, "learned": 4, "deleted": 5, "purged": 6,
            "db_literals": 7, "peak_db_literals": 8,
            "minimized_literals": 9}

    __slots__ = ("_lib", "_h", "solve_calls")

    def __init__(self, lib, handle) -> None:
        self._lib = lib
        self._h = handle
        self.solve_calls = 0

    def __getattr__(self, name: str) -> int:
        idx = _CKernelStats._IDX.get(name)
        if idx is None:
            raise AttributeError(name)
        return self._lib.ck_stat(self._h, idx)

    def as_dict(self) -> Dict[str, int]:
        """Counter snapshot keyed by the shared stat names."""
        return {name: getattr(self, name)
                for name in SolverStats.__slots__}

    def __repr__(self) -> str:  # pragma: no cover
        return f"_CKernelStats({self.as_dict()})"


class _CKernelSolver(KernelSolver):
    """The kernel engine running on the compiled core.

    Constructed by ``KernelSolver.__new__`` for proof-free solvers;
    every method is a thin ctypes shim over ``ckernel.c``.  The
    telemetry ``solve`` wrapper is inherited unchanged.
    """

    backend = "compiled"

    def __init__(self, proof: ResolutionProof | None = None) -> None:
        lib = _ckernel.load_core()
        self._lib = lib
        self._h = lib.ck_new()
        self.proof = None
        self.stats = _CKernelStats(lib, self._h)

    def __del__(self) -> None:
        h = getattr(self, "_h", None)
        if h:
            self._h = None
            try:
                self._lib.ck_free(h)
            except (AttributeError, OSError):  # pragma: no cover
                pass

    @property
    def ok(self) -> bool:
        """False once the clause set is known unsatisfiable."""
        return bool(self._lib.ck_ok(self._h))

    def new_var(self) -> int:
        """Allocate a fresh variable; returns its DIMACS index."""
        return self._lib.ck_new_var(self._h)

    def ensure_vars(self, up_to: int) -> None:
        """Make sure variables ``1..up_to`` exist."""
        self._lib.ck_ensure_vars(self._h, up_to)

    @property
    def num_vars(self) -> int:
        """Number of allocated variables."""
        return self._lib.ck_num_vars(self._h)

    def fixed_value(self, dimacs_lit: int) -> Optional[bool]:
        """Value of a literal fixed at decision level 0, else None."""
        a = self._lib.ck_fixed_value(self._h, dimacs_lit)
        return None if a == 0 else a > 0

    def set_default_phase(self, dimacs_var: int, phase: bool) -> None:
        """Seed the saved phase of a variable (decision polarity)."""
        self._lib.ck_set_phase(self._h, abs(dimacs_var),
                               1 if phase else 0)

    def add_clause(self, dimacs_lits: Iterable[int]) -> bool:
        """Add a clause; returns False iff the formula is now UNSAT."""
        lits = list(dimacs_lits)
        arr = (ctypes.c_int32 * len(lits))(*lits)
        return bool(self._lib.ck_add_clause(self._h, arr, len(lits)))

    def add_clauses(self, clause_list: Iterable[Iterable[int]]) -> bool:
        """Add many clauses; returns False if the formula became UNSAT."""
        result = True
        for lits in clause_list:
            if not self.add_clause(lits):
                result = False
        return result

    def purge_satisfied(self) -> int:
        """Physically delete clauses satisfied at level 0 (jSAT
        group retirement); returns the number purged."""
        return self._lib.ck_purge_satisfied(self._h)

    def _solve(self, assumptions: Sequence[int] = (),
               budget: Budget | None = None) -> SolveResult:
        """Uninstrumented body of :meth:`solve` (C core dispatch)."""
        self.stats.solve_calls += 1
        b = budget or Budget.unlimited()
        if b.deadline is not None:
            deadline = b.deadline
        elif b.max_seconds is not None:
            deadline = time.monotonic() + b.max_seconds
        else:
            deadline = -1.0
        # Pre-expired deadlines / pending cancellations must stop the
        # call before level-0 propagation, like both Python engines.
        if (deadline >= 0.0 and time.monotonic() > deadline) \
                or stop_requested():
            return SolveResult.UNKNOWN
        assumps = list(assumptions)
        arr = (ctypes.c_int32 * len(assumps))(*assumps)
        probe = _STOP_PROBE if stop_check_installed() \
            else _ckernel.STOP_CB()
        res = self._lib.ck_solve(
            self._h, arr, len(assumps),
            _lim(b.max_conflicts), _lim(b.max_decisions),
            _lim(b.max_propagations), _lim(b.max_literals),
            deadline, probe)
        if res == 1:
            return SolveResult.SAT
        if res == 0:
            return SolveResult.UNSAT
        return SolveResult.UNKNOWN

    def model_value(self, dimacs_var: int) -> Optional[bool]:
        """Value of a variable in the last model (None if unassigned)."""
        a = self._lib.ck_model_value(self._h, abs(dimacs_var))
        if a == 0:
            return None
        return (a > 0) if dimacs_var > 0 else (a < 0)

    def model(self) -> Dict[int, bool]:
        """The last satisfying assignment as var -> bool."""
        n = self._lib.ck_num_vars(self._h)
        buf = (ctypes.c_int8 * (n + 1))()
        mn = self._lib.ck_copy_model(self._h, buf, n)
        return {v: buf[v] > 0 for v in range(1, min(mn, n) + 1)
                if buf[v] != 0}

    def core(self) -> List[int]:
        """Failed assumption literals of the last UNSAT-under-
        assumptions call (DIMACS form, sorted by variable)."""
        n = self._lib.ck_core_size(self._h)
        if not n:
            return []
        buf = (ctypes.c_int32 * n)()
        self._lib.ck_copy_core(self._h, buf)
        return sorted(set(buf), key=abs)

    def num_clauses(self) -> int:
        """Number of attached problem clauses (excludes learnt)."""
        return self._lib.ck_num_clauses(self._h)

    def num_learnts(self) -> int:
        """Number of learnt clauses currently retained."""
        return self._lib.ck_num_learnts(self._h)

    @property
    def empty_clause_proof(self) -> int:
        """Always -1: the compiled core never logs proofs (solvers
        with a proof sink use the interpreted path instead)."""
        return -1


# ----------------------------------------------------------------------
# Engine selection
# ----------------------------------------------------------------------
def make_solver(engine: str | None = None,
                proof: ResolutionProof | None = None):
    """Build a SAT solver for the requested engine.

    ``engine`` is ``"kernel"`` (the array-based core in this module),
    ``"reference"`` (the pure-Python :class:`CdclSolver` the kernel is
    differentially pinned against), or None / ``"auto"`` to resolve the
    process default from ``REPRO_SAT_KERNEL`` (kernel when unset).
    Both engines share one public surface, one :class:`SolverStats`
    vocabulary and one proof-logging protocol, so callers never branch
    on the engine.
    """
    engine = resolve_engine(engine)
    if engine == "kernel":
        return KernelSolver(proof=proof)
    return CdclSolver(proof=proof)
