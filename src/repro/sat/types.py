"""Shared types for the SAT subsystem.

Internal literal encoding (MiniSat-style): DIMACS variable ``v`` becomes
internal variable index ``v``; the internal literal is ``2*v`` for the
positive phase and ``2*v + 1`` for the negative phase, so ``lit ^ 1``
negates and ``lit >> 1`` recovers the variable.
"""

from __future__ import annotations

import enum
import os
import time
from typing import Callable, List, Optional

__all__ = ["SolveResult", "Budget", "BudgetExceeded", "to_internal",
           "from_internal", "Clause", "UNDEF", "luby",
           "install_stop_check", "stop_requested", "stop_check_installed",
           "resolve_engine", "SAT_ENGINES", "DEFAULT_SAT_ENGINE",
           "SAT_ENGINE_ENV"]

UNDEF = -1

# ----------------------------------------------------------------------
# Solver engine selection
# ----------------------------------------------------------------------
#: The two CDCL engines sharing one public surface: the array-based
#: kernel (``sat/kernel.py``) and the pure-Python reference
#: (``sat/solver.py``) it is differentially pinned against.
SAT_ENGINES = ("kernel", "reference")

#: The kernel is the default now that the differential gate
#: (``tests/test_kernel_differential.py``) passes.
DEFAULT_SAT_ENGINE = "kernel"

#: Environment override consulted when no explicit engine is passed.
SAT_ENGINE_ENV = "REPRO_SAT_KERNEL"

_ENGINE_ALIASES = {
    "kernel": "kernel", "fast": "kernel", "array": "kernel",
    "1": "kernel", "on": "kernel", "true": "kernel", "yes": "kernel",
    "reference": "reference", "ref": "reference", "python": "reference",
    "pure": "reference", "0": "reference", "off": "reference",
    "false": "reference", "no": "reference",
}


def resolve_engine(engine: Optional[str] = None) -> str:
    """Normalize a solver-engine request to ``"kernel"`` or ``"reference"``.

    Resolution order: the explicit ``engine`` argument, then the
    ``REPRO_SAT_KERNEL`` environment variable, then
    :data:`DEFAULT_SAT_ENGINE`.  ``None``, ``""`` and ``"auto"`` defer
    to the next level; boolean-style spellings (``on``/``off``,
    ``1``/``0``) and ``ref``/``python`` aliases are accepted.

    >>> resolve_engine("reference")
    'reference'
    >>> resolve_engine("auto") in SAT_ENGINES
    True
    """
    for candidate in (engine, os.environ.get(SAT_ENGINE_ENV)):
        if candidate is None:
            continue
        candidate = candidate.strip().lower()
        if candidate in ("", "auto"):
            continue
        resolved = _ENGINE_ALIASES.get(candidate)
        if resolved is None:
            raise ValueError(
                f"unknown SAT engine {candidate!r}; "
                f"expected one of {SAT_ENGINES}")
        return resolved
    return DEFAULT_SAT_ENGINE


def to_internal(dimacs_lit: int) -> int:
    """DIMACS literal -> internal literal."""
    v = abs(dimacs_lit)
    return 2 * v + (1 if dimacs_lit < 0 else 0)


def from_internal(lit: int) -> int:
    """Internal literal -> DIMACS literal."""
    v = lit >> 1
    return -v if (lit & 1) else v


class SolveResult(enum.Enum):
    """Outcome of a solver call."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"          # a resource budget was exhausted

    def __bool__(self) -> bool:
        raise TypeError("SolveResult is tri-valued; compare explicitly")


class BudgetExceeded(Exception):
    """Internal signal: a resource budget ran out mid-search."""


# ----------------------------------------------------------------------
# Cooperative cancellation (the SMPT stop-Event pattern)
# ----------------------------------------------------------------------
# A process-wide hook consulted at every solver budget checkpoint.  A
# worker process installs a check bound to its cancellation Event (and
# its parent's liveness) once at startup; solvers then abort mid-search
# with BudgetExceeded("cancelled") as soon as the check fires, freeing
# the core without killing the process.  In-process callers never pay
# more than one None comparison.
_STOP_CHECK: Optional[Callable[[], bool]] = None


def install_stop_check(check: Optional[Callable[[], bool]]
                       ) -> Optional[Callable[[], bool]]:
    """Install a process-wide cancellation probe; returns the previous.

    ``check`` is called (with no arguments) from solver budget
    checkpoints — keep it cheap.  Pass None to uninstall.
    """
    global _STOP_CHECK
    previous = _STOP_CHECK
    _STOP_CHECK = check
    return previous


def stop_requested() -> bool:
    """True when an installed stop check says to abandon the search."""
    return _STOP_CHECK is not None and _STOP_CHECK()


def stop_check_installed() -> bool:
    """True when a cancellation probe is currently installed.

    The compiled kernel core uses this to decide whether to pass a
    callback across the FFI boundary at all — in-process callers pay
    nothing.
    """
    return _STOP_CHECK is not None


class Budget:
    """Resource limits for a solver run.

    Any limit set to None is unlimited.  ``max_literals`` caps the total
    number of literals resident in the clause database — the analogue of
    the paper's 1 GB memory limit.

    ``max_seconds`` by itself is a *per-call* allowance: every solver
    call measures its own slice, so a deepening loop that reuses one
    budget grants each of its O(max_bound) SAT calls a fresh full
    window.  Call :meth:`arm` to pin the wall-clock limit to one shared
    deadline instead — armed once, consumed across every call that
    carries this budget object (the unbounded provers and
    ``verify_unbounded`` arm their budget at loop entry).
    """

    def __init__(self,
                 max_conflicts: int | None = None,
                 max_decisions: int | None = None,
                 max_propagations: int | None = None,
                 max_seconds: float | None = None,
                 max_literals: int | None = None) -> None:
        self.max_conflicts = max_conflicts
        self.max_decisions = max_decisions
        self.max_propagations = max_propagations
        self.max_seconds = max_seconds
        self.max_literals = max_literals
        self.deadline: Optional[float] = None

    @staticmethod
    def unlimited() -> "Budget":
        return Budget()

    def arm(self) -> "Budget":
        """Fix the wall-clock limit to one shared deadline, now.

        Idempotent: the first call stamps ``deadline = now +
        max_seconds``; later calls (and every solver call consuming
        this object) see the same instant.  A budget without
        ``max_seconds`` arms to nothing.  Returns self for chaining.
        """
        if self.deadline is None and self.max_seconds is not None:
            self.deadline = time.monotonic() + self.max_seconds
        return self

    def expired(self) -> bool:
        """True once an armed deadline has passed (False when unarmed)."""
        return self.deadline is not None \
            and time.monotonic() > self.deadline

    def scaled(self, factor: float) -> "Budget":
        """A copy with all countable limits multiplied by ``factor``."""
        def mul(x: int | None) -> int | None:
            return None if x is None else max(1, int(x * factor))

        out = Budget(mul(self.max_conflicts), mul(self.max_decisions),
                     mul(self.max_propagations),
                     None if self.max_seconds is None
                     else self.max_seconds * factor,
                     mul(self.max_literals))
        return out

    def __repr__(self) -> str:  # pragma: no cover
        parts = []
        for name in ("max_conflicts", "max_decisions", "max_propagations",
                     "max_seconds", "max_literals"):
            val = getattr(self, name)
            if val is not None:
                parts.append(f"{name}={val}")
        return "Budget(" + ", ".join(parts) + ")"


class Clause:
    """A clause in the solver's database.

    ``lits`` holds internal literals; positions 0 and 1 are the watched
    literals.  ``learnt`` clauses carry an LBD score and activity for the
    deletion policy.
    """

    __slots__ = ("lits", "learnt", "lbd", "activity", "deleted", "proof_id")

    def __init__(self, lits: List[int], learnt: bool = False,
                 proof_id: int = -1) -> None:
        self.lits = lits
        self.learnt = learnt
        self.lbd = 0
        self.activity = 0.0
        self.deleted = False
        self.proof_id = proof_id

    def __len__(self) -> int:
        return len(self.lits)

    def __repr__(self) -> str:  # pragma: no cover
        kind = "L" if self.learnt else "O"
        return f"Clause[{kind}]({[from_internal(l) for l in self.lits]})"


def luby(i: int) -> int:
    """The Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...

    ``i`` is 1-based (``luby(1) == 1``).
    """
    x = i - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) // 2
        seq -= 1
        x %= size
    return 1 << seq
