"""Craig interpolation from resolution refutations (McMillan's system).

Given an UNSAT formula partitioned into clause sets A and B and a
logged resolution refutation (:class:`repro.sat.proof.ResolutionProof`),
compute an interpolant P with the three defining properties:

* ``A ⟹ P``,
* ``P ∧ B`` is unsatisfiable,
* ``vars(P) ⊆ vars(A) ∩ vars(B)``.

McMillan's labelling: for an input clause ``c ∈ A`` the partial
interpolant is the disjunction of c's *global* literals (those whose
variable also occurs in B); for ``c ∈ B`` it is TRUE.  A resolution on
pivot x combines partial interpolants with OR when x is A-local and
with AND otherwise.

The paper's introduction cites interpolation-based model checking as
one of the techniques whose SAT queries still suffer the unrolling
memory blow-up; :mod:`repro.bmc.interpolation` builds that procedure on
top of this module.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Set

from ..logic import expr as ex
from ..logic.expr import Expr
from .proof import ProofError, ResolutionProof

__all__ = ["compute_interpolant", "InterpolationError"]


class InterpolationError(ValueError):
    """Raised when the A/B partition or the proof is inconsistent."""


def compute_interpolant(proof: ResolutionProof, empty_id: int,
                        a_ids: Iterable[int], b_ids: Iterable[int],
                        var_name: Callable[[int], str] | None = None
                        ) -> Expr:
    """Interpolant of (A, B) from the refutation ending at ``empty_id``.

    ``a_ids``/``b_ids`` are proof ids of the input clauses in each
    partition (every input clause used by the refutation must be in
    exactly one).  ``var_name`` maps CNF variables to expression
    variable names (default ``v<idx>``).
    """
    # Callers may pass raw proof-id ranges captured around their
    # add_clauses calls; such ranges can also contain *derived* steps
    # (level-0 propagation units logged while loading).  Only input
    # steps define the partition — everything else is ignored.
    a_set = {i for i in a_ids if proof.is_input(i)}
    b_set = {i for i in b_ids if proof.is_input(i)}
    overlap = a_set & b_set
    if overlap:
        raise InterpolationError(f"clauses in both partitions: {overlap}")
    if var_name is None:
        def var_name(v: int) -> str:
            return f"v{v}"

    # Variables occurring in B's input clauses are "global" labels.
    b_vars: Set[int] = set()
    for cid in b_set:
        for lit in proof.lits_of(cid):
            b_vars.add(abs(lit))

    def lit_expr(lit: int) -> Expr:
        base = ex.var(var_name(abs(lit)))
        return base if lit > 0 else ex.mk_not(base)

    needed = proof._needed(empty_id)
    partial: Dict[int, Expr] = {}
    clauses: Dict[int, FrozenSet[int]] = {}

    for i in needed:
        if proof.is_input(i):
            lits = frozenset(proof.lits_of(i))
            clauses[i] = lits
            if i in a_set:
                globals_ = [lit_expr(l) for l in lits if abs(l) in b_vars]
                partial[i] = ex.disjoin(globals_)
            elif i in b_set:
                partial[i] = ex.TRUE
            else:
                raise InterpolationError(
                    f"input clause {i} ({sorted(lits)}) not in A or B")
            continue
        step = proof._steps[i]
        current = clauses[step.start]
        itp = partial[step.start]
        for other_id, pivot in step.chain:
            other = clauses[other_id]
            other_itp = partial[other_id]
            current = ResolutionProof._resolve(current, other, pivot)
            if pivot in b_vars:
                itp = ex.mk_and(itp, other_itp)
            else:
                itp = ex.mk_or(itp, other_itp)
        clauses[i] = current
        partial[i] = itp

    if clauses[empty_id]:
        raise ProofError("refutation does not end in the empty clause")
    return partial[empty_id]
