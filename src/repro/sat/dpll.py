"""A plain DPLL solver (no learning) and a brute-force enumerator.

These are reference implementations: slow but simple enough to serve as
test oracles for the CDCL solver, and as the pedagogical baseline for
the jSAT narrative (the paper describes jSAT as a DPLL-style procedure).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..logic.cnf import CNF
from .types import SolveResult

__all__ = ["DpllSolver", "brute_force_models", "brute_force_sat"]


class DpllSolver:
    """Recursive DPLL with unit propagation and pure-literal elimination.

    Intended for small formulae (tests, oracles); use
    :class:`repro.sat.solver.CdclSolver` for anything serious.
    """

    def __init__(self, cnf: CNF) -> None:
        self.cnf = cnf
        self.model: Dict[int, bool] = {}
        self.decisions = 0

    def solve(self) -> SolveResult:
        clauses = [frozenset(c) for c in self.cnf.clauses]
        assignment: Dict[int, bool] = {}
        if self._dpll(clauses, assignment):
            # Complete the model for unconstrained variables.
            for v in range(1, self.cnf.num_vars + 1):
                assignment.setdefault(v, False)
            self.model = assignment
            return SolveResult.SAT
        return SolveResult.UNSAT

    def _dpll(self, clauses: List[frozenset[int]],
              assignment: Dict[int, bool]) -> bool:
        clauses = self._propagate(clauses, assignment)
        if clauses is None:
            return False
        if not clauses:
            return True
        # Pure literal elimination.
        pures = self._pure_literals(clauses)
        if pures:
            for lit in pures:
                assignment[abs(lit)] = lit > 0
            return self._dpll(clauses, assignment)
        # Branch on the first literal of the first shortest clause.
        branch_lit = min(clauses, key=len).__iter__().__next__()
        self.decisions += 1
        for value in (branch_lit, -branch_lit):
            trail_copy = dict(assignment)
            trail_copy[abs(value)] = value > 0
            if self._dpll(clauses, trail_copy):
                assignment.clear()
                assignment.update(trail_copy)
                return True
        return False

    @staticmethod
    def _propagate(clauses: List[frozenset[int]],
                   assignment: Dict[int, bool]
                   ) -> Optional[List[frozenset[int]]]:
        changed = True
        while changed:
            changed = False
            next_clauses: List[frozenset[int]] = []
            for clause in clauses:
                lits = []
                satisfied = False
                for lit in clause:
                    val = assignment.get(abs(lit))
                    if val is None:
                        lits.append(lit)
                    elif val == (lit > 0):
                        satisfied = True
                        break
                if satisfied:
                    continue
                if not lits:
                    return None
                if len(lits) == 1:
                    assignment[abs(lits[0])] = lits[0] > 0
                    changed = True
                else:
                    next_clauses.append(frozenset(lits))
            clauses = next_clauses
        return clauses

    @staticmethod
    def _pure_literals(clauses: List[frozenset[int]]) -> List[int]:
        phase: Dict[int, int] = {}
        for clause in clauses:
            for lit in clause:
                v = abs(lit)
                s = 1 if lit > 0 else -1
                if phase.get(v, s) != s:
                    phase[v] = 0
                else:
                    phase[v] = s
        return [v if s > 0 else -v for v, s in phase.items() if s != 0]


def brute_force_models(cnf: CNF,
                       variables: Sequence[int] | None = None
                       ) -> Iterable[Dict[int, bool]]:
    """Yield every satisfying total assignment (small formulae only)."""
    if variables is None:
        variables = list(range(1, cnf.num_vars + 1))
    n = len(variables)
    if n > 24:
        raise ValueError(f"{n} variables is too many for brute force")
    for bits in range(1 << n):
        assignment = {v: bool((bits >> i) & 1)
                      for i, v in enumerate(variables)}
        if cnf.evaluate(assignment):
            yield assignment


def brute_force_sat(cnf: CNF) -> Tuple[SolveResult, Optional[Dict[int, bool]]]:
    """Decide a small CNF by enumeration; returns (result, model|None)."""
    for model in brute_force_models(cnf):
        return SolveResult.SAT, model
    return SolveResult.UNSAT, None
