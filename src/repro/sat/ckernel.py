"""Build and load the compiled CDCL core (``ckernel.c``).

The C source ships with the package and is compiled once per machine
with whatever system C compiler is available (``$CC``, ``cc``,
``gcc``, ``clang``), into a content-addressed shared object under the
user cache directory.  Loading is lazy and failure-tolerant: if no
compiler is present or the build fails, :func:`load_core` returns None
and the kernel engine transparently falls back to its pure-Python
array implementation — same results, just slower.

Set ``REPRO_SAT_CC=off`` to force the fallback (used by the
differential tests to pin both implementations against the reference
solver), or ``REPRO_SAT_CC_DEBUG=1`` to surface build errors.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import sys
import tempfile
from typing import Optional

__all__ = ["load_core", "compiled_available", "CORE_ENV"]

#: Environment switch for the compiled core ("off"/"0" disables it).
CORE_ENV = "REPRO_SAT_CC"

_SOURCE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "ckernel.c")
_lib: Optional[ctypes.CDLL] = None
_tried = False

#: ctypes signature of the cooperative-cancellation probe passed to
#: ``ck_solve`` (returns nonzero to abort the search).
STOP_CB = ctypes.CFUNCTYPE(ctypes.c_int)


def _debug(msg: str) -> None:
    if os.environ.get("REPRO_SAT_CC_DEBUG"):
        print(f"[repro.sat.ckernel] {msg}", file=sys.stderr)


def _cache_path(source: bytes) -> str:
    tag = hashlib.sha256(source).hexdigest()[:16]
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache")
    for root in (os.path.join(base, "repro"), tempfile.gettempdir()):
        try:
            os.makedirs(root, exist_ok=True)
            probe = os.path.join(root, f".w{os.getpid()}")
            with open(probe, "w"):
                pass
            os.unlink(probe)
            return os.path.join(root, f"repro_ckernel_{tag}.so")
        except OSError:
            continue
    return os.path.join(tempfile.gettempdir(),
                        f"repro_ckernel_{tag}.so")


def _compile(source_path: str, out_path: str) -> bool:
    compilers = []
    if os.environ.get("CC"):
        compilers.append(os.environ["CC"])
    compilers += ["cc", "gcc", "clang"]
    tmp_out = f"{out_path}.{os.getpid()}.tmp"
    for cc in compilers:
        cmd = [cc, "-O2", "-fPIC", "-shared", "-o", tmp_out, source_path]
        try:
            proc = subprocess.run(cmd, capture_output=True, timeout=120)
        except (OSError, subprocess.TimeoutExpired) as exc:
            _debug(f"{cc}: {exc}")
            continue
        if proc.returncode == 0:
            os.replace(tmp_out, out_path)
            _debug(f"built with {cc} -> {out_path}")
            return True
        _debug(f"{cc} failed: {proc.stderr.decode(errors='replace')}")
    try:
        os.unlink(tmp_out)
    except OSError:
        pass
    return False


def _bind(lib: ctypes.CDLL) -> ctypes.CDLL:
    c_sp = ctypes.c_void_p
    i32 = ctypes.c_int32
    i64 = ctypes.c_int64
    lib.ck_new.restype = c_sp
    lib.ck_new.argtypes = []
    lib.ck_free.argtypes = [c_sp]
    lib.ck_new_var.restype = i32
    lib.ck_new_var.argtypes = [c_sp]
    lib.ck_ensure_vars.argtypes = [c_sp, i32]
    lib.ck_num_vars.restype = i32
    lib.ck_num_vars.argtypes = [c_sp]
    lib.ck_ok.restype = ctypes.c_int
    lib.ck_ok.argtypes = [c_sp]
    lib.ck_stat.restype = i64
    lib.ck_stat.argtypes = [c_sp, ctypes.c_int]
    lib.ck_add_clause.restype = ctypes.c_int
    lib.ck_add_clause.argtypes = [c_sp, ctypes.POINTER(i32), i32]
    lib.ck_solve.restype = ctypes.c_int
    lib.ck_solve.argtypes = [c_sp, ctypes.POINTER(i32), i32,
                             i64, i64, i64, i64, ctypes.c_double,
                             STOP_CB]
    lib.ck_model_value.restype = ctypes.c_int
    lib.ck_model_value.argtypes = [c_sp, i32]
    lib.ck_copy_model.restype = i32
    lib.ck_copy_model.argtypes = [c_sp, ctypes.POINTER(ctypes.c_int8),
                                  i32]
    lib.ck_core_size.restype = i32
    lib.ck_core_size.argtypes = [c_sp]
    lib.ck_copy_core.argtypes = [c_sp, ctypes.POINTER(i32)]
    lib.ck_fixed_value.restype = ctypes.c_int
    lib.ck_fixed_value.argtypes = [c_sp, i32]
    lib.ck_set_phase.argtypes = [c_sp, i32, ctypes.c_int]
    lib.ck_num_clauses.restype = i32
    lib.ck_num_clauses.argtypes = [c_sp]
    lib.ck_num_learnts.restype = i32
    lib.ck_num_learnts.argtypes = [c_sp]
    lib.ck_purge_satisfied.restype = i32
    lib.ck_purge_satisfied.argtypes = [c_sp]
    return lib


def load_core() -> Optional[ctypes.CDLL]:
    """The compiled core library, building it on first use.

    Returns None when disabled (``REPRO_SAT_CC=off``), when no C
    compiler is available, or when the build/load fails; the result is
    cached for the life of the process.
    """
    global _lib, _tried
    if os.environ.get(CORE_ENV, "").strip().lower() in (
            "off", "0", "false", "no", "py", "python"):
        return None
    if _tried:
        return _lib
    _tried = True
    try:
        with open(_SOURCE, "rb") as fh:
            source = fh.read()
    except OSError as exc:
        _debug(f"source missing: {exc}")
        return None
    so_path = _cache_path(source)
    if not os.path.exists(so_path) and not _compile(_SOURCE, so_path):
        return None
    try:
        _lib = _bind(ctypes.CDLL(so_path))
    except OSError as exc:
        _debug(f"load failed: {exc}")
        _lib = None
    return _lib


def compiled_available() -> bool:
    """True when the compiled core can be (or already was) loaded."""
    return load_core() is not None
