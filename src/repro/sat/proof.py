"""Resolution and DRAT proof logging and checking.

The CDCL engines can log every learnt clause as a *resolution chain*:
a start clause plus a sequence of ``(antecedent_id, pivot_var)`` steps.
Replaying the chains (:class:`ResolutionProof`) validates the
refutation and drives UNSAT-core extraction and Craig interpolation
(:mod:`repro.sat.interpolation`).

:class:`DratProof` accepts the same logging calls but keeps only the
DRAT view — the ordered sequence of clause *additions* — and validates
each derived clause by reverse unit propagation (RUP), the check DRAT
tools perform.  Both proof sinks plug into either solver engine
unchanged.

Clause literals here are DIMACS-signed ints.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

__all__ = ["ResolutionProof", "DratProof", "ProofError"]


class ProofError(ValueError):
    """Raised when a logged proof does not replay correctly."""


class _Step:
    __slots__ = ("kind", "lits", "start", "chain", "group")

    def __init__(self, kind: str, lits: Tuple[int, ...],
                 start: int = -1,
                 chain: Tuple[Tuple[int, int], ...] = (),
                 group: str | None = None) -> None:
        self.kind = kind            # "input" or "derived"
        self.lits = lits
        self.start = start
        self.chain = chain
        self.group = group


class ResolutionProof:
    """An append-only log of input clauses and resolution derivations."""

    def __init__(self) -> None:
        self._steps: List[_Step] = []

    def __len__(self) -> int:
        return len(self._steps)

    # ------------------------------------------------------------------
    # Logging (called by the solver)
    # ------------------------------------------------------------------
    def add_input(self, lits: Iterable[int], group: str | None = None) -> int:
        """Record an input (problem) clause; returns its proof id."""
        self._steps.append(_Step("input", tuple(lits), group=group))
        return len(self._steps) - 1

    def add_derived(self, start: int, chain: Sequence[Tuple[int, int]],
                    result_lits: Iterable[int]) -> int:
        """Record a derived clause.

        ``start`` is the id of the first antecedent; ``chain`` lists
        ``(antecedent_id, pivot_var)`` resolutions applied in order;
        ``result_lits`` is the clause the solver believes it derived
        (checked during replay).
        """
        if start < 0:
            raise ProofError("derived clause with invalid start id")
        if not chain:
            # Degenerate chain: the derived clause IS the start clause.
            return start
        self._steps.append(_Step("derived", tuple(result_lits), start,
                                 tuple(chain)))
        return len(self._steps) - 1

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def lits_of(self, proof_id: int) -> Tuple[int, ...]:
        return self._steps[proof_id].lits

    def is_input(self, proof_id: int) -> bool:
        return self._steps[proof_id].kind == "input"

    def inputs(self) -> List[int]:
        """Ids of all input clauses."""
        return [i for i, s in enumerate(self._steps) if s.kind == "input"]

    # ------------------------------------------------------------------
    # Replay / check
    # ------------------------------------------------------------------
    def replay(self, proof_id: int, strict: bool = True
               ) -> FrozenSet[int]:
        """Re-derive the clause at ``proof_id`` by literal-set resolution.

        Checks each chain step: the pivot must occur with opposite phases
        in the two operands.  With ``strict`` the replayed clause must
        match the recorded literals exactly (as a set).
        """
        cache: Dict[int, FrozenSet[int]] = {}
        for i in self._needed(proof_id):
            step = self._steps[i]
            if step.kind == "input":
                cache[i] = frozenset(step.lits)
                continue
            current = cache[step.start]
            for other_id, pivot in step.chain:
                other = cache[other_id]
                current = self._resolve(current, other, pivot)
            cache[i] = current
            if strict and current != frozenset(step.lits):
                raise ProofError(
                    f"step {i}: replay gives {sorted(current)}, "
                    f"solver recorded {sorted(step.lits)}")
        return cache[proof_id]

    def _needed(self, proof_id: int) -> List[int]:
        """Ids reachable from ``proof_id``, in dependency (ascending) order.

        Chains only reference earlier ids, so ascending id order is a
        valid topological order.
        """
        needed = set()
        stack = [proof_id]
        while stack:
            i = stack.pop()
            if i in needed:
                continue
            needed.add(i)
            step = self._steps[i]
            if step.kind == "derived":
                stack.append(step.start)
                stack.extend(a for a, _ in step.chain)
        return sorted(needed)

    @staticmethod
    def _resolve(a: FrozenSet[int], b: FrozenSet[int],
                 pivot: int) -> FrozenSet[int]:
        if pivot in a and -pivot in b:
            pos, neg = a, b
        elif -pivot in a and pivot in b:
            pos, neg = b, a
        else:
            raise ProofError(
                f"pivot {pivot} does not occur with opposite phases")
        return (pos - {pivot}) | (neg - {-pivot})

    def check_refutation(self, empty_id: int) -> bool:
        """Verify that ``empty_id`` derives the empty clause."""
        result = self.replay(empty_id, strict=False)
        if result:
            raise ProofError(f"final clause not empty: {sorted(result)}")
        return True

    # ------------------------------------------------------------------
    # Cores
    # ------------------------------------------------------------------
    def core_inputs(self, proof_id: int) -> List[int]:
        """Input clause ids used (transitively) by ``proof_id``."""
        return [i for i in self._needed(proof_id)
                if self._steps[i].kind == "input"]

    def core_clauses(self, proof_id: int) -> List[Tuple[int, ...]]:
        """The input clauses (as literal tuples) in the core."""
        return [self._steps[i].lits for i in self.core_inputs(proof_id)]


class DratProof(ResolutionProof):
    """DRAT-style clause-addition log checked by reverse unit propagation.

    Drop-in for :class:`ResolutionProof` on the *logging* side: the
    solvers call :meth:`add_input` / :meth:`add_derived` identically,
    but the resolution chains are discarded — only the order of clause
    additions matters, exactly what a DRAT proof records.  Checking
    replaces chain replay with the RUP test: a derived clause ``C`` is
    valid iff assuming ``¬C`` and unit-propagating over every clause
    added before it yields a conflict.  Clause deletions are not
    recorded; RUP checking remains sound with missing deletions (the
    database it propagates over is only ever larger than the
    solver's).

    Unlike resolution chains, a DRAT log carries no antecedent
    structure, so it cannot drive interpolation or exact cores —
    :meth:`core_inputs` degrades to the full input set.

    Example
    -------
    >>> p = DratProof()
    >>> a = p.add_input([1]); b = p.add_input([-1])
    >>> e = p.add_derived(a, [(b, 1)], [])
    >>> p.check_refutation(e)
    True
    """

    def add_derived(self, start: int, chain: Sequence[Tuple[int, int]],
                    result_lits: Iterable[int]) -> int:
        """Record a derived clause addition (the chain is discarded)."""
        if start < 0:
            raise ProofError("derived clause with invalid start id")
        if not chain:
            # Degenerate chain: the derived clause IS the start clause.
            return start
        self._steps.append(_Step("derived", tuple(result_lits), start, ()))
        return len(self._steps) - 1

    # ------------------------------------------------------------------
    # RUP checking
    # ------------------------------------------------------------------
    def verify(self, up_to: int | None = None) -> bool:
        """Forward-check every derived step (through ``up_to``) by RUP.

        Raises :class:`ProofError` at the first derived clause that is
        not a reverse-unit-propagation consequence of the additions
        before it.
        """
        clauses: List[List[int]] = []
        watches: Dict[int, List[int]] = {}
        units: List[int] = []

        def add_to_db(lits: Tuple[int, ...]) -> None:
            if len(lits) == 0:
                return
            if len(lits) == 1:
                units.append(lits[0])
                return
            ci = len(clauses)
            clauses.append(list(lits))
            watches.setdefault(lits[0], []).append(ci)
            watches.setdefault(lits[1], []).append(ci)

        def rup(clause: Tuple[int, ...]) -> bool:
            assign: Dict[int, bool] = {}
            queue: List[int] = []

            def enqueue(lit: int) -> bool:
                var, sign = abs(lit), lit > 0
                if var in assign:
                    return assign[var] != sign      # conflicting unit
                assign[var] = sign
                queue.append(lit)
                return False

            for lit in clause:
                if enqueue(-lit):
                    return True
            for lit in units:
                if enqueue(lit):
                    return True
            qi = 0
            while qi < len(queue):
                false_lit = -queue[qi]
                qi += 1
                watch_list = watches.get(false_lit)
                if not watch_list:
                    continue
                i = 0
                while i < len(watch_list):
                    ci = watch_list[i]
                    cl = clauses[ci]
                    if cl[0] == false_lit:
                        cl[0], cl[1] = cl[1], cl[0]
                    first = cl[0]
                    fv = assign.get(abs(first))
                    if fv is not None and fv == (first > 0):
                        i += 1                       # satisfied
                        continue
                    moved = False
                    for k in range(2, len(cl)):
                        q = cl[k]
                        qv = assign.get(abs(q))
                        if qv is None or qv == (q > 0):
                            cl[1], cl[k] = cl[k], cl[1]
                            watch_list[i] = watch_list[-1]
                            watch_list.pop()
                            watches.setdefault(q, []).append(ci)
                            moved = True
                            break
                    if moved:
                        continue
                    if fv is None:
                        if enqueue(first):
                            return True
                        i += 1
                    else:
                        return True                  # clause falsified
            return False

        last = len(self._steps) - 1 if up_to is None else up_to
        for i, step in enumerate(self._steps[:last + 1]):
            if step.kind != "input" and not rup(step.lits):
                raise ProofError(
                    f"step {i}: clause {sorted(step.lits)} is not RUP")
            add_to_db(step.lits)
        return True

    def replay(self, proof_id: int, strict: bool = True) -> FrozenSet[int]:
        """RUP-check the log through ``proof_id``; returns its literals."""
        self.verify(proof_id)
        return frozenset(self._steps[proof_id].lits)

    def check_refutation(self, empty_id: int) -> bool:
        """Verify that ``empty_id`` is a RUP-derived empty clause."""
        if self._steps[empty_id].lits:
            raise ProofError(
                f"final clause not empty: "
                f"{sorted(self._steps[empty_id].lits)}")
        return self.verify(empty_id)

    def core_inputs(self, proof_id: int) -> List[int]:
        """All input ids: DRAT logs carry no antecedent structure, so
        the only sound core is the full input set."""
        return self.inputs()
