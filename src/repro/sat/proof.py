"""Resolution proof logging and checking.

The CDCL solver can log every learnt clause as a *resolution chain*: a
start clause plus a sequence of ``(antecedent_id, pivot_var)`` steps.
Replaying the chains validates the refutation and drives UNSAT-core
extraction and Craig interpolation (:mod:`repro.sat.interpolation`).

Clause literals here are DIMACS-signed ints.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

__all__ = ["ResolutionProof", "ProofError"]


class ProofError(ValueError):
    """Raised when a logged proof does not replay correctly."""


class _Step:
    __slots__ = ("kind", "lits", "start", "chain", "group")

    def __init__(self, kind: str, lits: Tuple[int, ...],
                 start: int = -1,
                 chain: Tuple[Tuple[int, int], ...] = (),
                 group: str | None = None) -> None:
        self.kind = kind            # "input" or "derived"
        self.lits = lits
        self.start = start
        self.chain = chain
        self.group = group


class ResolutionProof:
    """An append-only log of input clauses and resolution derivations."""

    def __init__(self) -> None:
        self._steps: List[_Step] = []

    def __len__(self) -> int:
        return len(self._steps)

    # ------------------------------------------------------------------
    # Logging (called by the solver)
    # ------------------------------------------------------------------
    def add_input(self, lits: Iterable[int], group: str | None = None) -> int:
        """Record an input (problem) clause; returns its proof id."""
        self._steps.append(_Step("input", tuple(lits), group=group))
        return len(self._steps) - 1

    def add_derived(self, start: int, chain: Sequence[Tuple[int, int]],
                    result_lits: Iterable[int]) -> int:
        """Record a derived clause.

        ``start`` is the id of the first antecedent; ``chain`` lists
        ``(antecedent_id, pivot_var)`` resolutions applied in order;
        ``result_lits`` is the clause the solver believes it derived
        (checked during replay).
        """
        if start < 0:
            raise ProofError("derived clause with invalid start id")
        if not chain:
            # Degenerate chain: the derived clause IS the start clause.
            return start
        self._steps.append(_Step("derived", tuple(result_lits), start,
                                 tuple(chain)))
        return len(self._steps) - 1

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def lits_of(self, proof_id: int) -> Tuple[int, ...]:
        return self._steps[proof_id].lits

    def is_input(self, proof_id: int) -> bool:
        return self._steps[proof_id].kind == "input"

    def inputs(self) -> List[int]:
        """Ids of all input clauses."""
        return [i for i, s in enumerate(self._steps) if s.kind == "input"]

    # ------------------------------------------------------------------
    # Replay / check
    # ------------------------------------------------------------------
    def replay(self, proof_id: int, strict: bool = True
               ) -> FrozenSet[int]:
        """Re-derive the clause at ``proof_id`` by literal-set resolution.

        Checks each chain step: the pivot must occur with opposite phases
        in the two operands.  With ``strict`` the replayed clause must
        match the recorded literals exactly (as a set).
        """
        cache: Dict[int, FrozenSet[int]] = {}
        for i in self._needed(proof_id):
            step = self._steps[i]
            if step.kind == "input":
                cache[i] = frozenset(step.lits)
                continue
            current = cache[step.start]
            for other_id, pivot in step.chain:
                other = cache[other_id]
                current = self._resolve(current, other, pivot)
            cache[i] = current
            if strict and current != frozenset(step.lits):
                raise ProofError(
                    f"step {i}: replay gives {sorted(current)}, "
                    f"solver recorded {sorted(step.lits)}")
        return cache[proof_id]

    def _needed(self, proof_id: int) -> List[int]:
        """Ids reachable from ``proof_id``, in dependency (ascending) order.

        Chains only reference earlier ids, so ascending id order is a
        valid topological order.
        """
        needed = set()
        stack = [proof_id]
        while stack:
            i = stack.pop()
            if i in needed:
                continue
            needed.add(i)
            step = self._steps[i]
            if step.kind == "derived":
                stack.append(step.start)
                stack.extend(a for a, _ in step.chain)
        return sorted(needed)

    @staticmethod
    def _resolve(a: FrozenSet[int], b: FrozenSet[int],
                 pivot: int) -> FrozenSet[int]:
        if pivot in a and -pivot in b:
            pos, neg = a, b
        elif -pivot in a and pivot in b:
            pos, neg = b, a
        else:
            raise ProofError(
                f"pivot {pivot} does not occur with opposite phases")
        return (pos - {pivot}) | (neg - {-pivot})

    def check_refutation(self, empty_id: int) -> bool:
        """Verify that ``empty_id`` derives the empty clause."""
        result = self.replay(empty_id, strict=False)
        if result:
            raise ProofError(f"final clause not empty: {sorted(result)}")
        return True

    # ------------------------------------------------------------------
    # Cores
    # ------------------------------------------------------------------
    def core_inputs(self, proof_id: int) -> List[int]:
        """Input clause ids used (transitively) by ``proof_id``."""
        return [i for i in self._needed(proof_id)
                if self._steps[i].kind == "input"]

    def core_clauses(self, proof_id: int) -> List[Tuple[int, ...]]:
        """The input clauses (as literal tuples) in the core."""
        return [self._steps[i].lits for i in self.core_inputs(proof_id)]
