"""SAT solving: CDCL solver, DPLL reference, proofs, interpolation."""

from .dpll import DpllSolver, brute_force_models, brute_force_sat
from .proof import ProofError, ResolutionProof
from .solver import CdclSolver, SolverStats
from .types import Budget, BudgetExceeded, SolveResult

__all__ = [
    "CdclSolver",
    "SolverStats",
    "DpllSolver",
    "brute_force_models",
    "brute_force_sat",
    "ResolutionProof",
    "ProofError",
    "Budget",
    "BudgetExceeded",
    "SolveResult",
]
