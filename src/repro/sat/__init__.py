"""SAT solving: CDCL engines, DPLL reference, proofs, interpolation.

Two CDCL engines share one public surface: the array-based
:class:`KernelSolver` (``solver="kernel"``, with a compiled C core
when a system compiler is available) and the pure-Python
:class:`CdclSolver` reference (``solver="reference"``) it is
differentially pinned against.  :func:`make_solver` picks one; the
process default comes from the ``REPRO_SAT_KERNEL`` environment
variable via :func:`resolve_engine`.
"""

from .dpll import DpllSolver, brute_force_models, brute_force_sat
from .kernel import KernelSolver, make_solver
from .proof import DratProof, ProofError, ResolutionProof
from .solver import CdclSolver, SolverStats
from .types import (DEFAULT_SAT_ENGINE, SAT_ENGINE_ENV, SAT_ENGINES, Budget,
                    BudgetExceeded, SolveResult, resolve_engine)

__all__ = [
    "CdclSolver",
    "KernelSolver",
    "make_solver",
    "resolve_engine",
    "SAT_ENGINES",
    "SAT_ENGINE_ENV",
    "DEFAULT_SAT_ENGINE",
    "SolverStats",
    "DpllSolver",
    "brute_force_models",
    "brute_force_sat",
    "ResolutionProof",
    "DratProof",
    "ProofError",
    "Budget",
    "BudgetExceeded",
    "SolveResult",
]
