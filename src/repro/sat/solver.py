"""A CDCL SAT solver (MiniSat lineage), in pure Python.

Features: two-watched-literal propagation, first-UIP conflict analysis
with basic clause minimization, VSIDS decision heuristic with phase
saving, Luby restarts, LBD-aware learnt-clause deletion, incremental
solving under assumptions (with failed-assumption cores), resource
budgets, and optional resolution-proof logging (used for UNSAT cores and
Craig interpolation).

Retractable constraints (needed by jSAT to take back blocking clauses)
are expressed with *activation groups*: a clause ``(-g, c1, .., cn)`` is
active while the group literal ``g`` is assumed and permanently disabled
by ``add_clause([-g])``; :meth:`CdclSolver.purge_satisfied` then
physically reclaims every clause (including learnt clauses derived from
the group, which all contain ``-g``) — this is what keeps the jSAT
memory footprint bounded by a single transition-relation copy.

The public interface speaks DIMACS literals (signed ints); internally
the solver uses the MiniSat literal encoding from :mod:`repro.sat.types`.

This is the solver the paper's jSAT is "based on": the evaluation
compares jSAT against running *this* solver on the unrolled formula (1).
"""

from __future__ import annotations

import time
from heapq import heappop, heappush
from typing import Dict, Iterable, List, Optional, Sequence

from ..telemetry.metrics import current_metrics
from ..telemetry.trace import current_tracer
from .proof import ResolutionProof
from .types import (
    UNDEF,
    Budget,
    BudgetExceeded,
    Clause,
    SolveResult,
    from_internal,
    luby,
    stop_requested,
    to_internal,
)

__all__ = ["CdclSolver", "SolverStats"]


class SolverStats:
    """Counters exposed for the experiments (see bench_e6_memory)."""

    __slots__ = ("conflicts", "decisions", "propagations", "restarts",
                 "learned", "deleted", "purged", "db_literals",
                 "peak_db_literals", "solve_calls", "minimized_literals")

    def __init__(self) -> None:
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        self.learned = 0
        self.deleted = 0
        self.purged = 0
        self.db_literals = 0
        self.peak_db_literals = 0
        self.solve_calls = 0
        self.minimized_literals = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover
        return f"SolverStats({self.as_dict()})"


class CdclSolver:
    """Conflict-driven clause-learning SAT solver.

    Example
    -------
    >>> s = CdclSolver()
    >>> s.add_clause([1, 2])
    True
    >>> s.add_clause([-1, 2])
    True
    >>> s.solve() is SolveResult.SAT
    True
    >>> s.model_value(2)
    True
    """

    engine = "reference"

    def __init__(self, proof: ResolutionProof | None = None) -> None:
        self.proof = proof
        self.ok = True
        self._num_vars = 0
        # Indexed by internal variable (1-based; slot 0 unused).
        self._assign: List[int] = [UNDEF]
        self._level: List[int] = [0]
        self._reason: List[Optional[Clause]] = [None]
        self._activity: List[float] = [0.0]
        self._phase: List[bool] = [False]
        self._unit_proof: List[int] = [-1]      # proof id of level-0 units
        self._seen: List[bool] = [False]        # scratch for analyze
        # Indexed by internal literal.
        self._watches: List[List[Clause]] = [[], []]
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._clauses: List[Clause] = []        # problem clauses
        self._learnts: List[Clause] = []
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._cla_inc = 1.0
        self._heap: List[tuple[float, int]] = []
        self._model: List[int] = []
        self._core: List[int] = []
        self.stats = SolverStats()
        self._budget = Budget.unlimited()
        self._deadline: float | None = None
        self._run_conflicts = 0
        self._run_decisions = 0
        self._empty_clause_proof = -1

    # ==================================================================
    # Variables
    # ==================================================================
    def new_var(self) -> int:
        """Allocate a fresh variable; returns its DIMACS index."""
        self._num_vars += 1
        self._assign.append(UNDEF)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._phase.append(False)
        self._unit_proof.append(-1)
        self._seen.append(False)
        self._watches.append([])
        self._watches.append([])
        heappush(self._heap, (0.0, self._num_vars))
        return self._num_vars

    def ensure_vars(self, up_to: int) -> None:
        """Make sure variables ``1..up_to`` exist."""
        while self._num_vars < up_to:
            self.new_var()

    @property
    def num_vars(self) -> int:
        return self._num_vars

    def _value(self, lit: int) -> int:
        """Value of internal literal: 1 true, 0 false, UNDEF unassigned."""
        a = self._assign[lit >> 1]
        if a == UNDEF:
            return UNDEF
        return a ^ (lit & 1)

    def fixed_value(self, dimacs_lit: int) -> Optional[bool]:
        """Value of a literal fixed at decision level 0, else None."""
        v = abs(dimacs_lit)
        if v > self._num_vars:
            return None
        a = self._assign[v]
        if a == UNDEF or self._level[v] != 0:
            return None
        val = bool(a)
        return val if dimacs_lit > 0 else not val

    def set_default_phase(self, dimacs_var: int, phase: bool) -> None:
        """Seed the saved phase of a variable (decision polarity hint)."""
        self.ensure_vars(abs(dimacs_var))
        self._phase[abs(dimacs_var)] = phase

    # ==================================================================
    # Clauses
    # ==================================================================
    def add_clause(self, dimacs_lits: Iterable[int]) -> bool:
        """Add a clause; returns False iff the formula is now UNSAT.

        The solver backtracks to decision level 0 before adding.
        """
        self._cancel_until(0)
        if not self.ok:
            return False
        lits = sorted({to_internal(l) for l in dimacs_lits})
        for l in lits:
            self.ensure_vars(l >> 1)
        proof_id = -1
        if self.proof is not None:
            proof_id = self.proof.add_input([from_internal(l) for l in lits])

        out: List[int] = []
        strip_chain: List[tuple[int, int]] = []
        prev = 0
        for l in lits:
            if prev != 0 and (l ^ 1) == prev:
                return True                     # tautology: drop
            prev = l
            val = self._value(l)
            if val == 1:
                return True                     # satisfied at level 0
            if val == 0:
                strip_chain.append((self._unit_proof[l >> 1], l >> 1))
                continue                        # false at level 0: strip
            out.append(l)
        if self.proof is not None and strip_chain:
            proof_id = self.proof.add_derived(
                proof_id, strip_chain, [from_internal(l) for l in out])

        if not out:
            self.ok = False
            self._empty_clause_proof = proof_id
            return False
        if len(out) == 1:
            self._enqueue(out[0], None, unit_proof=proof_id)
            conflict = self._propagate()
            if conflict is not None:
                self.ok = False
                self._log_final_conflict(conflict)
                return False
            return True
        clause = Clause(out, learnt=False, proof_id=proof_id)
        self._clauses.append(clause)
        self._attach(clause)
        return True

    def add_clauses(self, clause_list: Iterable[Iterable[int]]) -> bool:
        """Add many clauses; returns False if the formula became UNSAT."""
        result = True
        for lits in clause_list:
            if not self.add_clause(lits):
                result = False
        return result

    def purge_satisfied(self) -> int:
        """Physically delete clauses satisfied at level 0.

        Together with activation-group literals this implements clause
        retraction: after ``add_clause([-g])`` every clause carrying
        ``-g`` (the group's originals *and* all learnt clauses derived
        from them) is satisfied and reclaimed here.  Returns the number
        of clauses purged.
        """
        self._cancel_until(0)
        purged = 0
        for store in (self._clauses, self._learnts):
            kept: List[Clause] = []
            for clause in store:
                if clause.deleted:
                    continue
                if any(self._value(l) == 1 and self._level[l >> 1] == 0
                       for l in clause.lits):
                    self._detach(clause)
                    clause.deleted = True
                    purged += 1
                else:
                    kept.append(clause)
            store[:] = kept
        self.stats.purged += purged
        return purged

    def _attach(self, clause: Clause) -> None:
        lits = clause.lits
        self._watches[lits[0]].append(clause)
        self._watches[lits[1]].append(clause)
        self.stats.db_literals += len(lits)
        if self.stats.db_literals > self.stats.peak_db_literals:
            self.stats.peak_db_literals = self.stats.db_literals

    def _detach(self, clause: Clause) -> None:
        for w in (clause.lits[0], clause.lits[1]):
            try:
                self._watches[w].remove(clause)
            except ValueError:  # pragma: no cover - defensive
                pass
        self.stats.db_literals -= len(clause.lits)

    # ==================================================================
    # Trail
    # ==================================================================
    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _enqueue(self, lit: int, reason: Optional[Clause],
                 unit_proof: int = -1) -> None:
        v = lit >> 1
        self._assign[v] = 1 - (lit & 1)
        self._level[v] = len(self._trail_lim)
        self._reason[v] = reason
        self._trail.append(lit)
        if self.proof is not None and not self._trail_lim:
            self._record_unit_proof(lit, reason, unit_proof)

    def _record_unit_proof(self, lit: int, reason: Optional[Clause],
                           unit_proof: int) -> None:
        v = lit >> 1
        if unit_proof >= 0:
            self._unit_proof[v] = unit_proof
            return
        if reason is None:
            return
        assert self.proof is not None
        chain = [(self._unit_proof[q >> 1], q >> 1)
                 for q in reason.lits if q != lit]
        if chain:
            self._unit_proof[v] = self.proof.add_derived(
                reason.proof_id, chain, [from_internal(lit)])
        else:
            self._unit_proof[v] = reason.proof_id

    def _cancel_until(self, target_level: int) -> None:
        if self._decision_level() <= target_level:
            return
        boundary = self._trail_lim[target_level]
        heap = self._heap
        for i in range(len(self._trail) - 1, boundary - 1, -1):
            lit = self._trail[i]
            v = lit >> 1
            self._phase[v] = not (lit & 1)
            self._assign[v] = UNDEF
            self._reason[v] = None
            heappush(heap, (-self._activity[v], v))
        del self._trail[boundary:]
        del self._trail_lim[target_level:]
        self._qhead = min(self._qhead, boundary)

    # ==================================================================
    # Propagation
    # ==================================================================
    def _propagate(self) -> Optional[Clause]:
        """Unit propagation; returns the conflicting clause or None."""
        watches = self._watches
        assign = self._assign
        trail = self._trail
        while self._qhead < len(trail):
            p = trail[self._qhead]
            self._qhead += 1
            self.stats.propagations += 1
            false_lit = p ^ 1
            watchers = watches[false_lit]
            if not watchers:
                continue
            kept: List[Clause] = []
            i = 0
            n = len(watchers)
            while i < n:
                clause = watchers[i]
                i += 1
                if clause.deleted:
                    continue
                lits = clause.lits
                if lits[0] == false_lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                a = assign[first >> 1]
                if a != UNDEF and (a ^ (first & 1)) == 1:
                    kept.append(clause)          # already satisfied
                    continue
                found = False
                for j in range(2, len(lits)):
                    q = lits[j]
                    aq = assign[q >> 1]
                    if aq == UNDEF or (aq ^ (q & 1)) == 1:
                        lits[1], lits[j] = lits[j], lits[1]
                        watches[q].append(clause)
                        found = True
                        break
                if found:
                    continue
                kept.append(clause)
                if a == UNDEF:
                    self._enqueue(first, clause)
                else:
                    kept.extend(watchers[i:])
                    watches[false_lit] = kept
                    return clause
            watches[false_lit] = kept
        return None

    # ==================================================================
    # Conflict analysis
    # ==================================================================
    def _bump_var(self, v: int) -> None:
        act = self._activity[v] + self._var_inc
        self._activity[v] = act
        if act > 1e100:
            inv = 1e-100
            for i in range(1, self._num_vars + 1):
                self._activity[i] *= inv
            self._var_inc *= inv
            self._heap = [(-self._activity[v2], v2)
                          for v2 in range(1, self._num_vars + 1)
                          if self._assign[v2] == UNDEF]
            self._heap.sort()
            return
        if self._assign[v] == UNDEF:
            heappush(self._heap, (-act, v))

    def _bump_clause(self, clause: Clause) -> None:
        clause.activity += self._cla_inc
        if clause.activity > 1e20:
            for c in self._learnts:
                c.activity *= 1e-20
            self._cla_inc *= 1e-20

    def _analyze(self, conflict: Clause) -> tuple[List[int], int, int]:
        """First-UIP analysis.

        Returns ``(learnt_lits, backtrack_level, proof_id)`` where
        ``learnt_lits[0]`` is the asserting literal.
        """
        learnt: List[int] = [0]                # slot 0: asserting literal
        seen = self._seen
        touched: List[int] = []
        path_count = 0
        p = -1
        index = len(self._trail) - 1
        current_level = self._decision_level()
        chain: List[tuple[int, int]] = []
        start_id = conflict.proof_id
        clause: Optional[Clause] = conflict
        proof_on = self.proof is not None

        while True:
            assert clause is not None
            if clause.learnt:
                self._bump_clause(clause)
            for q in clause.lits:
                if q == p:
                    continue
                v = q >> 1
                if seen[v]:
                    continue
                lv = self._level[v]
                if lv == 0:
                    if proof_on:
                        chain.append((self._unit_proof[v], v))
                    continue
                seen[v] = True
                touched.append(v)
                self._bump_var(v)
                if lv >= current_level:
                    path_count += 1
                else:
                    learnt.append(q)
            while not seen[self._trail[index] >> 1]:
                index -= 1
            p = self._trail[index]
            index -= 1
            v = p >> 1
            seen[v] = False
            path_count -= 1
            if path_count == 0:
                break
            clause = self._reason[v]
            if proof_on:
                assert clause is not None
                chain.append((clause.proof_id, v))
        learnt[0] = p ^ 1

        learnt, chain = self._minimize(learnt, chain)

        for v in touched:
            seen[v] = False

        if len(learnt) == 1:
            bt_level = 0
        else:
            max_i = 1
            for i in range(2, len(learnt)):
                if self._level[learnt[i] >> 1] > self._level[learnt[max_i] >> 1]:
                    max_i = i
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
            bt_level = self._level[learnt[1] >> 1]

        proof_id = -1
        if proof_on:
            assert self.proof is not None
            proof_id = self.proof.add_derived(
                start_id, chain, [from_internal(l) for l in learnt])
        return learnt, bt_level, proof_id

    def _minimize(self, learnt: List[int], chain: List[tuple[int, int]]):
        """Basic (non-recursive) clause minimization.

        A literal is redundant if its reason's other literals are all in
        the learnt clause or fixed at level 0.  ``self._seen`` is True
        exactly for the variables of ``learnt[1:]`` on entry (analyze
        cleared only the resolved-away ones).
        """
        seen = self._seen
        for l in learnt[1:]:
            seen[l >> 1] = True
        kept = [learnt[0]]
        removed_chain: List[tuple[int, int]] = []
        proof_on = self.proof is not None
        for l in learnt[1:]:
            v = l >> 1
            reason = self._reason[v]
            if reason is None:
                kept.append(l)
                continue
            redundant = True
            for q in reason.lits:
                qv = q >> 1
                if qv == v:
                    continue
                if not seen[qv] and self._level[qv] > 0:
                    redundant = False
                    break
            if redundant:
                self.stats.minimized_literals += 1
                if proof_on:
                    removed_chain.append((reason.proof_id, v))
                    for q in reason.lits:
                        qv = q >> 1
                        if qv != v and self._level[qv] == 0:
                            removed_chain.append((self._unit_proof[qv], qv))
                seen[v] = False
            else:
                kept.append(l)
        return kept, chain + removed_chain

    def _log_final_conflict(self, conflict: Clause) -> None:
        """Derive the empty clause when a conflict occurs at level 0."""
        if self.proof is None:
            return
        chain = [(self._unit_proof[q >> 1], q >> 1) for q in conflict.lits]
        self._empty_clause_proof = self.proof.add_derived(
            conflict.proof_id, chain, [])

    @property
    def empty_clause_proof(self) -> int:
        """Proof id of the derived empty clause (UNSAT runs only)."""
        return self._empty_clause_proof

    # ==================================================================
    # Learnt clause management
    # ==================================================================
    def _learn(self, lits: List[int], proof_id: int) -> None:
        self.stats.learned += 1
        if len(lits) == 1:
            self._enqueue(lits[0], None, unit_proof=proof_id)
            return
        clause = Clause(list(lits), learnt=True, proof_id=proof_id)
        clause.lbd = len({self._level[l >> 1] for l in lits})
        self._learnts.append(clause)
        self._attach(clause)
        self._bump_clause(clause)
        self._enqueue(lits[0], clause)

    def _reduce_db(self) -> None:
        """Delete roughly half of the learnt clauses (high LBD first)."""
        learnts = [c for c in self._learnts if not c.deleted]
        learnts.sort(key=lambda c: (-c.lbd, c.activity))
        locked = {id(self._reason[l >> 1])
                  for l in self._trail if self._reason[l >> 1] is not None}
        target = len(learnts) // 2
        kept: List[Clause] = []
        for idx, clause in enumerate(learnts):
            drop = (idx < target and len(clause.lits) > 2 and clause.lbd > 2
                    and id(clause) not in locked)
            if drop:
                self._detach(clause)
                clause.deleted = True
                self.stats.deleted += 1
            else:
                kept.append(clause)
        self._learnts = kept

    # ==================================================================
    # Decisions
    # ==================================================================
    def _pick_branch_var(self) -> int:
        heap = self._heap
        activity = self._activity
        assign = self._assign
        while heap:
            neg_act, v = heappop(heap)
            if assign[v] == UNDEF and -neg_act == activity[v]:
                return v
        # Heap ran dry (stale entries only): rebuild from scratch.
        fresh = [(-activity[v], v) for v in range(1, self._num_vars + 1)
                 if assign[v] == UNDEF]
        if not fresh:
            return 0
        fresh.sort()
        self._heap = fresh
        neg_act, v = heappop(self._heap)
        return v

    # ==================================================================
    # Budgets
    # ==================================================================
    def _check_budget(self) -> None:
        b = self._budget
        if b.max_conflicts is not None and self._run_conflicts >= b.max_conflicts:
            raise BudgetExceeded("conflicts")
        if b.max_decisions is not None and self._run_decisions >= b.max_decisions:
            raise BudgetExceeded("decisions")
        if (b.max_propagations is not None
                and self.stats.propagations >= b.max_propagations):
            raise BudgetExceeded("propagations")
        if (b.max_literals is not None
                and self.stats.db_literals >= b.max_literals):
            raise BudgetExceeded("memory")
        if self._deadline is not None and time.monotonic() > self._deadline:
            raise BudgetExceeded("time")
        if stop_requested():
            raise BudgetExceeded("cancelled")

    # ==================================================================
    # Main solve loop
    # ==================================================================
    def solve(self, assumptions: Sequence[int] = (),
              budget: Budget | None = None) -> SolveResult:
        """Decide satisfiability under the given assumptions.

        Returns SAT / UNSAT / UNKNOWN (budget exhausted).  After SAT,
        :meth:`model_value` reads the model; after UNSAT under
        assumptions, :meth:`core` gives the failed-assumption subset.

        When the process tracer / metrics registry is enabled (see
        :mod:`repro.telemetry`) each call emits a ``sat.solve`` span
        and per-call counter deltas; with both disabled the fast path
        below adds two attribute checks.
        """
        tracer = current_tracer()
        registry = current_metrics()
        if not tracer.enabled and not registry.enabled:
            return self._solve(assumptions, budget)

        stats = self.stats
        before = (stats.conflicts, stats.decisions, stats.propagations,
                  stats.restarts, stats.learned)
        start = time.monotonic()
        with tracer.span("sat.solve", assumptions=len(assumptions),
                         engine=self.engine) as sp:
            result = self._solve(assumptions, budget)
            sp.set(result=result.name,
                   conflicts=stats.conflicts - before[0],
                   decisions=stats.decisions - before[1],
                   propagations=stats.propagations - before[2],
                   db_literals=stats.db_literals)
        registry.inc("sat.solve_calls")
        registry.inc("sat.conflicts", stats.conflicts - before[0])
        registry.inc("sat.decisions", stats.decisions - before[1])
        registry.inc("sat.propagations", stats.propagations - before[2])
        registry.inc("sat.restarts", stats.restarts - before[3])
        registry.inc("sat.learned", stats.learned - before[4])
        registry.gauge("sat.db_literals", stats.db_literals)
        registry.gauge_max("sat.peak_db_literals", stats.peak_db_literals)
        registry.observe("sat.solve_seconds", time.monotonic() - start)
        return result

    def _solve(self, assumptions: Sequence[int] = (),
               budget: Budget | None = None) -> SolveResult:
        """Uninstrumented body of :meth:`solve`."""
        self.stats.solve_calls += 1
        self._budget = budget or Budget.unlimited()
        # An armed budget (Budget.arm) carries one shared deadline
        # across every call that consumes it — the deepening-loop
        # contract.  Unarmed budgets keep the per-call window.
        if self._budget.deadline is not None:
            self._deadline = self._budget.deadline
        else:
            self._deadline = (time.monotonic() + self._budget.max_seconds
                              if self._budget.max_seconds is not None
                              else None)
        self._run_conflicts = 0
        self._run_decisions = 0
        self._model = []
        self._core = []
        # An already-expired deadline (or a pending cancellation) must
        # stop the call *here*: easy queries can be decided purely by
        # level-0 propagation, which never reaches the in-search budget
        # checks.
        if (self._deadline is not None
                and time.monotonic() > self._deadline) or stop_requested():
            self._budget = Budget.unlimited()
            self._deadline = None
            return SolveResult.UNKNOWN
        self._cancel_until(0)
        if not self.ok:
            return SolveResult.UNSAT
        conflict = self._propagate()
        if conflict is not None:
            self.ok = False
            self._log_final_conflict(conflict)
            return SolveResult.UNSAT

        internal_assumptions = [to_internal(l) for l in assumptions]
        for l in internal_assumptions:
            self.ensure_vars(l >> 1)

        try:
            return self._search(internal_assumptions)
        except BudgetExceeded:
            self._cancel_until(0)
            return SolveResult.UNKNOWN
        finally:
            self._budget = Budget.unlimited()
            self._deadline = None

    def _search(self, assumptions: List[int]) -> SolveResult:
        restart_count = 0
        max_learnts = max(1000, len(self._clauses) // 3)
        while True:
            restart_count += 1
            conflict_limit = 100 * luby(restart_count)
            status = self._search_episode(assumptions, conflict_limit,
                                          max_learnts)
            if status is not None:
                return status
            self.stats.restarts += 1
            self._cancel_until(0)
            if len(self._learnts) > max_learnts:
                max_learnts = int(max_learnts * 1.3)

    def _search_episode(self, assumptions: List[int], conflict_limit: int,
                        max_learnts: int) -> Optional[SolveResult]:
        episode_conflicts = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                episode_conflicts += 1
                self._run_conflicts += 1
                self.stats.conflicts += 1
                if self._decision_level() == 0:
                    self.ok = False
                    self._log_final_conflict(conflict)
                    return SolveResult.UNSAT
                learnt, bt_level, proof_id = self._analyze(conflict)
                self._cancel_until(bt_level)
                self._learn(learnt, proof_id)
                self._var_inc /= self._var_decay
                self._cla_inc /= 0.999
                self._check_budget()
                continue

            if len(self._learnts) - len(self._trail) > max_learnts:
                self._reduce_db()
            if episode_conflicts >= conflict_limit:
                return None                      # restart

            # Place the next assumption (MiniSat style: one decision
            # level per assumption, dummy level if already true).
            next_lit = 0
            while self._decision_level() < len(assumptions):
                lit = assumptions[self._decision_level()]
                val = self._value(lit)
                if val == 1:
                    self._trail_lim.append(len(self._trail))
                elif val == 0:
                    self._core = self._analyze_assumption_conflict(lit)
                    return SolveResult.UNSAT
                else:
                    next_lit = lit
                    break
            if next_lit == 0:
                v = self._pick_branch_var()
                if v == 0:
                    self._save_model()
                    return SolveResult.SAT
                next_lit = 2 * v + (0 if self._phase[v] else 1)
            self.stats.decisions += 1
            self._run_decisions += 1
            self._check_budget()
            self._trail_lim.append(len(self._trail))
            self._enqueue(next_lit, None)

    def _save_model(self) -> None:
        self._model = list(self._assign)

    def _analyze_assumption_conflict(self, failed_lit: int) -> List[int]:
        """Failed-assumption core: which earlier assumptions force the
        negation of ``failed_lit`` (MiniSat ``analyzeFinal``)."""
        core = {from_internal(failed_lit)}
        seen = [False] * (self._num_vars + 1)
        seen[failed_lit >> 1] = True
        for i in range(len(self._trail) - 1, -1, -1):
            lit = self._trail[i]
            v = lit >> 1
            if not seen[v]:
                continue
            reason = self._reason[v]
            if reason is None:
                if self._level[v] > 0:
                    core.add(from_internal(lit))
            else:
                for q in reason.lits:
                    if (q >> 1) != v and self._level[q >> 1] > 0:
                        seen[q >> 1] = True
            seen[v] = False
        return sorted(core, key=abs)

    # ==================================================================
    # Result inspection
    # ==================================================================
    def model_value(self, dimacs_var: int) -> Optional[bool]:
        """Value of a variable in the last model (None if unassigned)."""
        v = abs(dimacs_var)
        if not self._model or v >= len(self._model):
            return None
        a = self._model[v]
        if a == UNDEF:
            return None
        return bool(a) if dimacs_var > 0 else not bool(a)

    def model(self) -> Dict[int, bool]:
        """The last satisfying assignment as var -> bool."""
        return {v: bool(self._model[v])
                for v in range(1, len(self._model))
                if self._model[v] != UNDEF}

    def core(self) -> List[int]:
        """Failed assumption literals of the last UNSAT-under-assumptions
        call (a subset of the assumptions, in DIMACS form)."""
        return list(self._core)

    def num_clauses(self) -> int:
        """Number of attached problem clauses (excludes learnt)."""
        return sum(1 for c in self._clauses if not c.deleted)

    def num_learnts(self) -> int:
        """Number of learnt clauses currently retained in the database."""
        return sum(1 for c in self._learnts if not c.deleted)
