/* Array-based CDCL core, compiled at first use via the system C
 * compiler (see ckernel.py) and driven through ctypes.
 *
 * This is the proof-free fast path of the "kernel" SAT engine: the
 * Python KernelSolver delegates here whenever no resolution proof is
 * being logged.  The layout mirrors the Python array kernel — flat
 * uint32 clause arena ([header, lbd, lits...]), watcher lists with
 * blocker literals compacted in place, an indexed max-heap over EVSIDS
 * activities, phase saving, Knuth reluctant-doubling restarts, and
 * LBD-based learnt-clause reduction with arena compaction.
 *
 * Literal encoding is MiniSat-internal: var v -> 2v (positive),
 * 2v + 1 (negative); lit ^ 1 negates, lit >> 1 recovers the var.
 * The FFI boundary speaks DIMACS ints; conversion happens here.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <time.h>

#define API __attribute__((visibility("default")))

/* ------------------------------------------------------------------ */
/* growable int vector                                                 */
/* ------------------------------------------------------------------ */
typedef struct { int32_t *d; int32_t sz, cap; } vi;

static void vi_reserve(vi *v, int32_t need) {
    if (need <= v->cap) return;
    int32_t c = v->cap ? v->cap : 8;
    while (c < need) c *= 2;
    v->d = (int32_t *)realloc(v->d, (size_t)c * sizeof(int32_t));
    v->cap = c;
}

static inline void vi_push(vi *v, int32_t x) {
    if (v->sz == v->cap) vi_reserve(v, v->sz + 1);
    v->d[v->sz++] = x;
}

static void vi_free(vi *v) { free(v->d); v->d = 0; v->sz = v->cap = 0; }

typedef int (*stop_cb)(void);

/* ------------------------------------------------------------------ */
/* solver                                                              */
/* ------------------------------------------------------------------ */
enum { ST_CONFLICTS, ST_DECISIONS, ST_PROPAGATIONS, ST_RESTARTS,
       ST_LEARNED, ST_DELETED, ST_PURGED, ST_DB_LITERALS,
       ST_PEAK_DB_LITERALS, ST_MINIMIZED, ST_N };

#define F_LEARNT  1u
#define F_DELETED 2u
#define HDR(sz, learnt) ((((uint32_t)(sz)) << 3) | ((learnt) ? F_LEARNT : 0))
#define C_SIZE(h) ((int32_t)((h) >> 3))

typedef struct Solver {
    int ok;
    int32_t nvars, vcap;
    /* per-var (slot 0 unused) */
    int8_t  *assign;        /* value of the positive literal: 1/-1/0   */
    int32_t *level;
    int32_t *reason;        /* cref; 0 = none                          */
    double  *act;
    uint8_t *phase;         /* decision sign bit: 1 -> negative first  */
    uint8_t *seen;
    int32_t *hidx;          /* heap position, -1 = absent              */
    uint32_t *lvl_stamp;    /* LBD stamping, indexed by level          */
    /* per-lit */
    vi *watches;            /* interleaved (cref, blocker)             */
    /* clause arena */
    uint32_t *arena; int64_t asz, acap, wasted;
    vi clauses, learnts;    /* cref lists                              */
    /* trail */
    int32_t *trail; int32_t trail_sz, qhead;
    vi trail_lim;
    /* branching */
    int32_t *heap; int32_t heap_sz;
    double var_inc;
    /* results */
    int8_t *model; int32_t model_n;
    vi core;
    /* scratch */
    vi tmp, toclear;
    uint32_t stamp;
    /* stats + per-call budget */
    int64_t st[ST_N];
    int64_t max_conf, max_dec, max_prop, max_lits;
    double deadline;        /* < 0: none (CLOCK_MONOTONIC seconds)     */
    stop_cb stop;
    int64_t run_conf, run_dec;
} Solver;

static inline int lit_val(const Solver *s, int32_t l) {
    int8_t a = s->assign[l >> 1];
    return (l & 1) ? -a : a;
}

/* ------------------------------------------------------------------ */
/* indexed max-heap on activity                                        */
/* ------------------------------------------------------------------ */
static void heap_up(Solver *s, int32_t i) {
    int32_t v = s->heap[i];
    double a = s->act[v];
    while (i > 0) {
        int32_t p = (i - 1) >> 1, pv = s->heap[p];
        if (s->act[pv] >= a) break;
        s->heap[i] = pv; s->hidx[pv] = i;
        i = p;
    }
    s->heap[i] = v; s->hidx[v] = i;
}

static void heap_down(Solver *s, int32_t i) {
    int32_t v = s->heap[i];
    double a = s->act[v];
    for (;;) {
        int32_t c = 2 * i + 1;
        if (c >= s->heap_sz) break;
        if (c + 1 < s->heap_sz
                && s->act[s->heap[c + 1]] > s->act[s->heap[c]]) c++;
        int32_t cv = s->heap[c];
        if (a >= s->act[cv]) break;
        s->heap[i] = cv; s->hidx[cv] = i;
        i = c;
    }
    s->heap[i] = v; s->hidx[v] = i;
}

static void heap_insert(Solver *s, int32_t v) {
    if (s->hidx[v] >= 0) return;
    s->heap[s->heap_sz] = v; s->hidx[v] = s->heap_sz;
    heap_up(s, s->heap_sz++);
}

static int32_t heap_pop(Solver *s) {
    int32_t v = s->heap[0];
    s->hidx[v] = -1;
    if (--s->heap_sz > 0) {
        s->heap[0] = s->heap[s->heap_sz];
        s->hidx[s->heap[0]] = 0;
        heap_down(s, 0);
    }
    return v;
}

/* ------------------------------------------------------------------ */
/* construction                                                        */
/* ------------------------------------------------------------------ */
API Solver *ck_new(void) {
    Solver *s = (Solver *)calloc(1, sizeof(Solver));
    s->ok = 1;
    s->var_inc = 1.0;
    s->deadline = -1.0;
    s->acap = 1024;
    s->arena = (uint32_t *)malloc((size_t)s->acap * sizeof(uint32_t));
    s->asz = 2;              /* pad so cref 0 means "no reason" */
    s->arena[0] = s->arena[1] = 0;
    return s;
}

API void ck_free(Solver *s) {
    if (!s) return;
    if (s->watches)          /* never allocated when no var was added */
        for (int32_t l = 0; l < 2 * (s->vcap + 1); l++)
            vi_free(&s->watches[l]);
    free(s->watches);
    free(s->assign); free(s->level); free(s->reason); free(s->act);
    free(s->phase); free(s->seen); free(s->hidx); free(s->lvl_stamp);
    free(s->arena); free(s->trail); free(s->heap); free(s->model);
    vi_free(&s->clauses); vi_free(&s->learnts); vi_free(&s->trail_lim);
    vi_free(&s->core); vi_free(&s->tmp); vi_free(&s->toclear);
    free(s);
}

static void ensure_vcap(Solver *s, int32_t n) {
    if (n <= s->vcap) return;
    int32_t c = s->vcap ? s->vcap : 64;
    while (c < n) c *= 2;
    s->assign = (int8_t *)realloc(s->assign, c + 1);
    s->level = (int32_t *)realloc(s->level, (c + 1) * sizeof(int32_t));
    s->reason = (int32_t *)realloc(s->reason, (c + 1) * sizeof(int32_t));
    s->act = (double *)realloc(s->act, (c + 1) * sizeof(double));
    s->phase = (uint8_t *)realloc(s->phase, c + 1);
    s->seen = (uint8_t *)realloc(s->seen, c + 1);
    s->hidx = (int32_t *)realloc(s->hidx, (c + 1) * sizeof(int32_t));
    s->lvl_stamp = (uint32_t *)realloc(s->lvl_stamp,
                                       (c + 1) * sizeof(uint32_t));
    s->trail = (int32_t *)realloc(s->trail, (c + 1) * sizeof(int32_t));
    s->heap = (int32_t *)realloc(s->heap, (c + 1) * sizeof(int32_t));
    s->model = (int8_t *)realloc(s->model, c + 1);
    vi *nw = (vi *)calloc(2 * (size_t)(c + 1), sizeof(vi));
    if (s->watches) {
        memcpy(nw, s->watches, 2 * (size_t)(s->vcap + 1) * sizeof(vi));
        free(s->watches);
    }
    s->watches = nw;
    s->vcap = c;
}

API int32_t ck_new_var(Solver *s) {
    ensure_vcap(s, s->nvars + 1);
    int32_t v = ++s->nvars;
    s->assign[v] = 0; s->level[v] = 0; s->reason[v] = 0;
    s->act[v] = 0.0; s->phase[v] = 1; s->seen[v] = 0;
    s->hidx[v] = -1; s->lvl_stamp[v] = 0; s->model[v] = 0;
    heap_insert(s, v);
    return v;
}

API void ck_ensure_vars(Solver *s, int32_t up_to) {
    while (s->nvars < up_to) ck_new_var(s);
}

API int32_t ck_num_vars(Solver *s) { return s->nvars; }
API int ck_ok(Solver *s) { return s->ok; }
API int64_t ck_stat(Solver *s, int which) {
    return (which >= 0 && which < ST_N) ? s->st[which] : 0;
}

/* ------------------------------------------------------------------ */
/* trail                                                               */
/* ------------------------------------------------------------------ */
static inline void enqueue(Solver *s, int32_t l, int32_t from) {
    int32_t v = l >> 1;
    s->assign[v] = (l & 1) ? -1 : 1;
    s->level[v] = s->trail_lim.sz;
    s->reason[v] = from;
    s->trail[s->trail_sz++] = l;
}

static void cancel_until(Solver *s, int32_t lvl) {
    if (s->trail_lim.sz <= lvl) return;
    int32_t bound = s->trail_lim.d[lvl];
    for (int32_t i = s->trail_sz - 1; i >= bound; i--) {
        int32_t l = s->trail[i], v = l >> 1;
        s->assign[v] = 0;
        s->phase[v] = (uint8_t)(l & 1);
        s->reason[v] = 0;
        heap_insert(s, v);
    }
    s->trail_sz = bound;
    s->trail_lim.sz = lvl;
    if (s->qhead > bound) s->qhead = bound;
}

/* ------------------------------------------------------------------ */
/* clause database                                                     */
/* ------------------------------------------------------------------ */
static int32_t push_clause(Solver *s, const int32_t *lits, int32_t n,
                           int learnt, int32_t lbd) {
    if (s->asz + n + 2 > s->acap) {
        while (s->acap < s->asz + n + 2) s->acap *= 2;
        s->arena = (uint32_t *)realloc(s->arena,
                                       (size_t)s->acap * sizeof(uint32_t));
    }
    int32_t cref = (int32_t)s->asz;
    s->arena[s->asz++] = HDR(n, learnt);
    s->arena[s->asz++] = (uint32_t)lbd;
    for (int32_t i = 0; i < n; i++) s->arena[s->asz++] = (uint32_t)lits[i];
    return cref;
}

static void attach(Solver *s, int32_t cref) {
    uint32_t *lits = s->arena + cref + 2;
    vi *w0 = &s->watches[lits[0]];
    vi_push(w0, cref); vi_push(w0, (int32_t)lits[1]);
    vi *w1 = &s->watches[lits[1]];
    vi_push(w1, cref); vi_push(w1, (int32_t)lits[0]);
    s->st[ST_DB_LITERALS] += C_SIZE(s->arena[cref]);
    if (s->st[ST_DB_LITERALS] > s->st[ST_PEAK_DB_LITERALS])
        s->st[ST_PEAK_DB_LITERALS] = s->st[ST_DB_LITERALS];
}

static void watch_remove(Solver *s, int32_t lit, int32_t cref) {
    vi *w = &s->watches[lit];
    for (int32_t i = 0; i < w->sz; i += 2) {
        if (w->d[i] == cref) {
            w->d[i] = w->d[w->sz - 2];
            w->d[i + 1] = w->d[w->sz - 1];
            w->sz -= 2;
            return;
        }
    }
}

static void delete_clause(Solver *s, int32_t cref) {
    uint32_t *c = s->arena + cref;
    watch_remove(s, (int32_t)c[2], cref);
    watch_remove(s, (int32_t)c[3], cref);
    s->st[ST_DB_LITERALS] -= C_SIZE(c[0]);
    c[0] |= F_DELETED;
    s->wasted += C_SIZE(c[0]) + 2;
}

/* Compact the arena: copy live clauses, remap reasons, rebuild
 * watches.  A forwarding address is parked in the old lbd slot. */
static void gc_arena(Solver *s) {
    uint32_t *na = (uint32_t *)malloc((size_t)s->acap * sizeof(uint32_t));
    int64_t nsz = 2;
    na[0] = na[1] = 0;
    vi *lists[2] = { &s->clauses, &s->learnts };
    for (int t = 0; t < 2; t++) {
        vi *ls = lists[t];
        int32_t j = 0;
        for (int32_t i = 0; i < ls->sz; i++) {
            int32_t cref = ls->d[i];
            uint32_t h = s->arena[cref];
            if (h & F_DELETED) continue;
            int32_t sz = C_SIZE(h);
            memcpy(na + nsz, s->arena + cref,
                   (size_t)(sz + 2) * sizeof(uint32_t));
            s->arena[cref + 1] = (uint32_t)nsz;   /* forwarding addr */
            ls->d[j++] = (int32_t)nsz;
            nsz += sz + 2;
        }
        ls->sz = j;
    }
    for (int32_t i = 0; i < s->trail_sz; i++) {
        int32_t v = s->trail[i] >> 1;
        int32_t r = s->reason[v];
        if (r) s->reason[v] = (int32_t)s->arena[r + 1];
    }
    free(s->arena);
    s->arena = na;
    s->asz = nsz;
    s->wasted = 0;
    for (int32_t l = 0; l < 2 * (s->vcap + 1); l++) s->watches[l].sz = 0;
    int64_t saved = s->st[ST_DB_LITERALS];
    s->st[ST_DB_LITERALS] = 0;
    for (int t = 0; t < 2; t++) {
        vi *ls = lists[t];
        for (int32_t i = 0; i < ls->sz; i++) attach(s, ls->d[i]);
    }
    s->st[ST_DB_LITERALS] = saved;
}

API int ck_add_clause(Solver *s, const int32_t *dlits, int32_t n) {
    if (!s->ok) return 0;
    cancel_until(s, 0);
    s->tmp.sz = 0;
    vi_reserve(&s->tmp, n);
    for (int32_t i = 0; i < n; i++) {
        int32_t d = dlits[i];
        int32_t v = d < 0 ? -d : d;
        ck_ensure_vars(s, v);
        s->tmp.d[s->tmp.sz++] = 2 * v + (d < 0 ? 1 : 0);
    }
    /* sort ascending (insertion sort: clauses are short) */
    int32_t *a = s->tmp.d;
    for (int32_t i = 1; i < n; i++) {
        int32_t x = a[i], j = i - 1;
        while (j >= 0 && a[j] > x) { a[j + 1] = a[j]; j--; }
        a[j + 1] = x;
    }
    int32_t m = 0, prev = 0;
    for (int32_t i = 0; i < n; i++) {
        int32_t l = a[i];
        if (l == prev) continue;                  /* duplicate   */
        if (prev && l == (prev ^ 1)) return 1;    /* tautology   */
        prev = l;
        int val = lit_val(s, l);
        if (val > 0) return 1;                    /* satisfied   */
        if (val < 0) continue;                    /* false at 0  */
        a[m++] = l;
    }
    if (m == 0) { s->ok = 0; return 0; }
    if (m == 1) {
        enqueue(s, a[0], 0);
        int32_t confl;
        /* inline level-0 propagation via the main routine below */
        extern int32_t ck_propagate_(Solver *);
        confl = ck_propagate_(s);
        if (confl) { s->ok = 0; return 0; }
        return 1;
    }
    int32_t cref = push_clause(s, a, m, 0, 0);
    vi_push(&s->clauses, cref);
    attach(s, cref);
    return 1;
}

/* ------------------------------------------------------------------ */
/* propagation                                                         */
/* ------------------------------------------------------------------ */
API int32_t ck_propagate_(Solver *s) {
    int32_t confl = 0;
    int32_t start = s->qhead;
    while (s->qhead < s->trail_sz) {
        int32_t p = s->trail[s->qhead++];
        int32_t fl = p ^ 1;
        vi *ws = &s->watches[fl];
        int32_t *d = ws->d;
        int32_t i = 0, j = 0, n = ws->sz;
        while (i < n) {
            int32_t blk = d[i + 1];
            if (lit_val(s, blk) > 0) {
                d[j] = d[i]; d[j + 1] = blk; i += 2; j += 2;
                continue;
            }
            int32_t cref = d[i];
            i += 2;
            uint32_t *c = s->arena + cref;
            int32_t sz = C_SIZE(c[0]);
            uint32_t *lits = c + 2;
            int32_t first = (int32_t)lits[0];
            if (first == fl) {
                first = (int32_t)lits[1];
                lits[0] = (uint32_t)first;
                lits[1] = (uint32_t)fl;
            }
            int fv = lit_val(s, first);
            if (fv > 0) { d[j] = cref; d[j + 1] = first; j += 2; continue; }
            int32_t k;
            for (k = 2; k < sz; k++) {
                int32_t q = (int32_t)lits[k];
                if (lit_val(s, q) >= 0) {
                    lits[1] = (uint32_t)q;
                    lits[k] = (uint32_t)fl;
                    vi *wq = &s->watches[q];
                    vi_push(wq, cref); vi_push(wq, first);
                    break;
                }
            }
            if (k < sz) continue;                 /* watch moved */
            d[j] = cref; d[j + 1] = first; j += 2;
            if (fv < 0) {                         /* conflict    */
                confl = cref;
                while (i < n) {
                    d[j] = d[i]; d[j + 1] = d[i + 1];
                    i += 2; j += 2;
                }
                break;
            }
            enqueue(s, first, cref);
        }
        ws->sz = j;
        if (confl) break;
    }
    s->st[ST_PROPAGATIONS] += s->qhead - start;
    return confl;
}

/* ------------------------------------------------------------------ */
/* conflict analysis                                                   */
/* ------------------------------------------------------------------ */
static void rescale_activity(Solver *s) {
    for (int32_t v = 1; v <= s->nvars; v++) s->act[v] *= 1e-100;
    s->var_inc *= 1e-100;
}

static inline void var_bump(Solver *s, int32_t v) {
    if ((s->act[v] += s->var_inc) > 1e100) rescale_activity(s);
    if (s->hidx[v] >= 0) heap_up(s, s->hidx[v]);
}

static void minimize(Solver *s, vi *learnt) {
    for (int32_t i = 1; i < learnt->sz; i++)
        s->seen[learnt->d[i] >> 1] = 1;
    int32_t j = 1;
    for (int32_t i = 1; i < learnt->sz; i++) {
        int32_t l = learnt->d[i], v = l >> 1;
        int32_t r = s->reason[v];
        if (!r) { learnt->d[j++] = l; continue; }
        uint32_t *c = s->arena + r;
        int32_t sz = C_SIZE(c[0]);
        uint32_t *lits = c + 2;
        int redundant = 1;
        for (int32_t k = 0; k < sz; k++) {
            int32_t qv = (int32_t)lits[k] >> 1;
            if (qv == v) continue;
            if (!s->seen[qv] && s->level[qv] > 0) { redundant = 0; break; }
        }
        if (redundant) { s->st[ST_MINIMIZED]++; s->seen[v] = 0; }
        else learnt->d[j++] = l;
    }
    learnt->sz = j;
}

/* First-UIP analysis; fills s->tmp with the learnt clause
 * (asserting literal first) and returns the backtrack level. */
static int32_t analyze(Solver *s, int32_t confl, int32_t *out_lbd) {
    vi *learnt = &s->tmp;
    learnt->sz = 0;
    vi_push(learnt, 0);
    s->toclear.sz = 0;
    int32_t path = 0, p = -1, idx = s->trail_sz - 1;
    int32_t cur = s->trail_lim.sz;
    for (;;) {
        uint32_t *c = s->arena + confl;
        int32_t sz = C_SIZE(c[0]);
        uint32_t *lits = c + 2;
        for (int32_t k = 0; k < sz; k++) {
            int32_t q = (int32_t)lits[k];
            if (q == p) continue;
            int32_t v = q >> 1;
            if (s->seen[v] || s->level[v] == 0) continue;
            s->seen[v] = 1;
            vi_push(&s->toclear, v);
            var_bump(s, v);
            if (s->level[v] >= cur) path++;
            else vi_push(learnt, q);
        }
        while (!s->seen[s->trail[idx] >> 1]) idx--;
        p = s->trail[idx--];
        s->seen[p >> 1] = 0;
        if (--path == 0) break;
        confl = s->reason[p >> 1];
    }
    learnt->d[0] = p ^ 1;
    minimize(s, learnt);
    for (int32_t i = 0; i < s->toclear.sz; i++)
        s->seen[s->toclear.d[i]] = 0;

    s->stamp++;
    int32_t lbd = 0;
    for (int32_t i = 0; i < learnt->sz; i++) {
        int32_t lv = s->level[learnt->d[i] >> 1];
        if (s->lvl_stamp[lv] != s->stamp) {
            s->lvl_stamp[lv] = s->stamp;
            lbd++;
        }
    }
    *out_lbd = lbd;

    if (learnt->sz == 1) return 0;
    int32_t mi = 1;
    for (int32_t i = 2; i < learnt->sz; i++)
        if (s->level[learnt->d[i] >> 1] > s->level[learnt->d[mi] >> 1])
            mi = i;
    int32_t t = learnt->d[1];
    learnt->d[1] = learnt->d[mi];
    learnt->d[mi] = t;
    return s->level[learnt->d[1] >> 1];
}

/* Failed-assumption core (MiniSat analyzeFinal): internal lits. */
static void analyze_final(Solver *s, int32_t failed) {
    s->core.sz = 0;
    vi_push(&s->core, failed);
    s->seen[failed >> 1] = 1;
    for (int32_t i = s->trail_sz - 1; i >= 0; i--) {
        int32_t l = s->trail[i], v = l >> 1;
        if (!s->seen[v]) continue;
        int32_t r = s->reason[v];
        if (!r) {
            if (s->level[v] > 0) vi_push(&s->core, l);
        } else {
            uint32_t *c = s->arena + r;
            int32_t sz = C_SIZE(c[0]);
            uint32_t *lits = c + 2;
            for (int32_t k = 0; k < sz; k++) {
                int32_t qv = (int32_t)lits[k] >> 1;
                if (qv != v && s->level[qv] > 0) s->seen[qv] = 1;
            }
        }
        s->seen[v] = 0;
    }
    s->seen[failed >> 1] = 0;
}

/* ------------------------------------------------------------------ */
/* learnt-clause management                                            */
/* ------------------------------------------------------------------ */
static void learn(Solver *s, int32_t lbd) {
    vi *lr = &s->tmp;
    s->st[ST_LEARNED]++;
    if (lr->sz == 1) { enqueue(s, lr->d[0], 0); return; }
    int32_t cref = push_clause(s, lr->d, lr->sz, 1, lbd);
    vi_push(&s->learnts, cref);
    attach(s, cref);
    enqueue(s, lr->d[0], cref);
}

static int cmp_reduce(const void *pa, const void *pb) {
    /* higher LBD first; ties: older (smaller cref) first */
    int64_t a = *(const int64_t *)pa, b = *(const int64_t *)pb;
    int32_t la = (int32_t)(a >> 32), lb = (int32_t)(b >> 32);
    if (la != lb) return lb - la;
    return (int32_t)a < (int32_t)b ? -1 : 1;
}

static void reduce_db(Solver *s) {
    int32_t n = s->learnts.sz;
    if (n < 2) return;
    int64_t *order = (int64_t *)malloc((size_t)n * sizeof(int64_t));
    for (int32_t i = 0; i < n; i++) {
        int32_t cref = s->learnts.d[i];
        order[i] = ((int64_t)(int32_t)s->arena[cref + 1] << 32)
                   | (uint32_t)cref;
    }
    qsort(order, (size_t)n, sizeof(int64_t), cmp_reduce);
    int32_t target = n / 2, kept = 0;
    for (int32_t i = 0; i < n; i++) {
        int32_t cref = (int32_t)(uint32_t)order[i];
        uint32_t *c = s->arena + cref;
        int32_t lbd = (int32_t)c[1];
        int32_t l0 = (int32_t)c[2];
        int locked = s->reason[l0 >> 1] == cref && lit_val(s, l0) > 0;
        if (i < target && lbd > 2 && !locked) {
            delete_clause(s, cref);
            s->st[ST_DELETED]++;
        } else {
            s->learnts.d[kept++] = cref;
        }
    }
    s->learnts.sz = kept;
    free(order);
    if (s->wasted * 2 > s->asz) gc_arena(s);
}

API int32_t ck_purge_satisfied(Solver *s) {
    cancel_until(s, 0);
    for (int32_t i = 0; i < s->trail_sz; i++)
        s->reason[s->trail[i] >> 1] = 0;
    int32_t purged = 0;
    vi *lists[2] = { &s->clauses, &s->learnts };
    for (int t = 0; t < 2; t++) {
        vi *ls = lists[t];
        for (int32_t i = 0; i < ls->sz; i++) {
            int32_t cref = ls->d[i];
            uint32_t *c = s->arena + cref;
            if (c[0] & F_DELETED) continue;
            int32_t sz = C_SIZE(c[0]);
            for (int32_t k = 0; k < sz; k++) {
                if (lit_val(s, (int32_t)c[2 + k]) > 0) {
                    delete_clause(s, cref);
                    purged++;
                    break;
                }
            }
        }
    }
    gc_arena(s);
    s->st[ST_PURGED] += purged;
    return purged;
}

/* ------------------------------------------------------------------ */
/* search                                                              */
/* ------------------------------------------------------------------ */
static int budget_exceeded(Solver *s) {
    if (s->run_conf >= s->max_conf) return 1;
    if (s->run_dec >= s->max_dec) return 1;
    if (s->st[ST_PROPAGATIONS] >= s->max_prop) return 1;
    if (s->st[ST_DB_LITERALS] >= s->max_lits) return 1;
    if (s->deadline >= 0.0) {
        struct timespec ts;
        clock_gettime(CLOCK_MONOTONIC, &ts);
        if (ts.tv_sec + ts.tv_nsec * 1e-9 > s->deadline) return 1;
    }
    if (s->stop && (((s->run_conf + s->run_dec) & 63) == 0) && s->stop())
        return 1;
    return 0;
}

static int32_t pick_branch(Solver *s) {
    while (s->heap_sz) {
        int32_t v = heap_pop(s);
        if (s->assign[v] == 0) return v;
    }
    return 0;
}

API int ck_solve(Solver *s, const int32_t *dassumps, int32_t n_ass,
                 int64_t max_conf, int64_t max_dec, int64_t max_prop,
                 int64_t max_lits, double deadline, stop_cb stop) {
    s->model_n = 0;
    s->core.sz = 0;
    cancel_until(s, 0);
    if (!s->ok) return 0;
    if (ck_propagate_(s)) { s->ok = 0; return 0; }

    s->max_conf = max_conf; s->max_dec = max_dec;
    s->max_prop = max_prop; s->max_lits = max_lits;
    s->deadline = deadline; s->stop = stop;
    s->run_conf = s->run_dec = 0;

    int32_t *ass = NULL;
    if (n_ass) {
        ass = (int32_t *)malloc((size_t)n_ass * sizeof(int32_t));
        for (int32_t i = 0; i < n_ass; i++) {
            int32_t d = dassumps[i];
            int32_t v = d < 0 ? -d : d;
            ck_ensure_vars(s, v);
            ass[i] = 2 * v + (d < 0 ? 1 : 0);
        }
    }

    int result = -2;
    int64_t ru = 1, rv = 1, conflict_limit = 100, episode = 0;
    int64_t max_learnts = s->clauses.sz / 3;
    if (max_learnts < 1000) max_learnts = 1000;

    while (result == -2) {
        int32_t confl = ck_propagate_(s);
        if (confl) {
            episode++; s->run_conf++; s->st[ST_CONFLICTS]++;
            if (s->trail_lim.sz == 0) {
                s->ok = 0;
                result = 0;
                break;
            }
            int32_t lbd;
            int32_t bt = analyze(s, confl, &lbd);
            cancel_until(s, bt);
            learn(s, lbd);
            s->var_inc *= (1.0 / 0.95);
            if (budget_exceeded(s)) { result = -1; break; }
            continue;
        }
        if (episode >= conflict_limit) {
            s->st[ST_RESTARTS]++;
            cancel_until(s, 0);
            if ((ru & -ru) == rv) { ru++; rv = 1; } else rv <<= 1;
            conflict_limit = 100 * rv;
            episode = 0;
            if (s->learnts.sz > max_learnts)
                max_learnts = max_learnts * 13 / 10;
            continue;
        }
        if ((int64_t)s->learnts.sz - s->trail_sz > max_learnts)
            reduce_db(s);

        int32_t next = 0;
        while (s->trail_lim.sz < n_ass) {
            int32_t al = ass[s->trail_lim.sz];
            int av = lit_val(s, al);
            if (av > 0) {
                vi_push(&s->trail_lim, s->trail_sz);
            } else if (av < 0) {
                analyze_final(s, al);
                result = 0;
                break;
            } else {
                next = al;
                break;
            }
        }
        if (result != -2) break;
        if (!next) {
            int32_t v = pick_branch(s);
            if (!v) {
                if (s->nvars)
                    memcpy(s->model, s->assign, (size_t)s->nvars + 1);
                s->model_n = s->nvars;
                result = 1;
                break;
            }
            next = 2 * v + s->phase[v];
        }
        s->st[ST_DECISIONS]++; s->run_dec++;
        if (budget_exceeded(s)) {
            heap_insert(s, next >> 1);
            result = -1;
            break;
        }
        vi_push(&s->trail_lim, s->trail_sz);
        enqueue(s, next, 0);
    }

    free(ass);
    if (result == -1) cancel_until(s, 0);
    s->max_conf = s->max_dec = s->max_prop = s->max_lits = INT64_MAX;
    s->deadline = -1.0;
    s->stop = NULL;
    return result;
}

/* ------------------------------------------------------------------ */
/* results                                                             */
/* ------------------------------------------------------------------ */
API int ck_model_value(Solver *s, int32_t var) {
    return (var >= 1 && var <= s->model_n) ? s->model[var] : 0;
}

API int32_t ck_copy_model(Solver *s, int8_t *out, int32_t cap) {
    int32_t n = s->model_n < cap ? s->model_n : cap;
    if (n > 0) memcpy(out, s->model, (size_t)n + 1);
    return s->model_n;
}

API int32_t ck_core_size(Solver *s) { return s->core.sz; }

API void ck_copy_core(Solver *s, int32_t *out) {
    for (int32_t i = 0; i < s->core.sz; i++) {
        int32_t l = s->core.d[i];
        out[i] = (l & 1) ? -(l >> 1) : (l >> 1);
    }
}

API int ck_fixed_value(Solver *s, int32_t dlit) {
    int32_t v = dlit < 0 ? -dlit : dlit;
    if (v > s->nvars) return 0;
    if (s->assign[v] == 0 || s->level[v] != 0) return 0;
    int val = s->assign[v];
    return dlit < 0 ? -val : val;
}

API void ck_set_phase(Solver *s, int32_t var, int phase) {
    ck_ensure_vars(s, var);
    s->phase[var] = phase ? 0 : 1;
}

API int32_t ck_num_clauses(Solver *s) { return s->clauses.sz; }
API int32_t ck_num_learnts(Solver *s) { return s->learnts.sz; }
