"""Parallel portfolio subsystem: race, batch, and cache BMC queries.

Layers (bottom up):

* :mod:`repro.portfolio.ipc` — plain-data payloads crossing process
  boundaries (and feeding the on-disk cache);
* :mod:`repro.portfolio.pool` — :class:`WorkerPool`, one-task-per-
  worker processes with hard wall-clock enforcement and respawn;
* :mod:`repro.portfolio.race` — :func:`race`, first conclusive answer
  wins, witnesses validated, losers killed (``method="portfolio"`` in
  :meth:`repro.bmc.session.BmcSession.check`);
* :mod:`repro.portfolio.cache` — :class:`ResultCache`, keyed by
  semantic fingerprints of (model, bound, method, budget);
* :mod:`repro.portfolio.scheduler` — :class:`BatchScheduler`, shards
  a (suite × methods) matrix across the pool hardest-first and
  reassembles results in deterministic serial order
  (``run_matrix(..., jobs=N)`` and the ``repro batch`` CLI).
"""

from .cache import (MemoryCache, ResultCache, cell_key, fingerprint_expr,
                    fingerprint_system)
from .ipc import (budget_from_dict, budget_to_dict, decode_outcome,
                  encode_outcome, encode_sweep_outcome, execute_cell,
                  make_cell_payload, outcome_to_result)
from .pool import Task, WorkerPool, default_jobs
from .race import DEFAULT_RACE_METHODS, RaceOutcome, race
from .scheduler import BatchScheduler, hardness_estimate

__all__ = [
    "WorkerPool", "Task", "default_jobs",
    "race", "RaceOutcome", "DEFAULT_RACE_METHODS",
    "BatchScheduler", "hardness_estimate",
    "ResultCache", "MemoryCache", "cell_key", "fingerprint_expr",
    "fingerprint_system",
    "make_cell_payload", "execute_cell", "encode_outcome",
    "encode_sweep_outcome", "decode_outcome", "outcome_to_result",
    "budget_to_dict", "budget_from_dict",
]
