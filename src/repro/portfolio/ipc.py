"""Inter-process payloads for the portfolio subsystem.

Worker processes receive a *cell payload* (system, query, method,
budget) and send back an *outcome* — a plain-data dict containing only
builtins and therefore safe to pickle through a ``multiprocessing``
pipe, write to the on-disk result cache, or diff in tests.  The
functions here are the single source of truth for both directions, so
the pool, the race primitive and the cache all agree on the format.
"""

from __future__ import annotations

import os
import traceback
from typing import Any, Dict, Optional

from ..bmc.backend import BmcResult, BoundResult, SweepResult
from ..bmc.metrics import measure_time
from ..bmc.session import BmcSession
from ..logic.expr import Expr
from ..sat.types import Budget, SolveResult
from ..system.model import TransitionSystem
from ..system.trace import Trace
from ..telemetry.metrics import MetricsRegistry, set_metrics
from ..telemetry.trace import NULL_TRACER, Tracer, set_tracer

__all__ = ["budget_to_dict", "budget_from_dict", "make_cell_payload",
           "execute_cell", "encode_outcome", "encode_sweep_outcome",
           "decode_outcome", "outcome_to_result", "set_progress_sink",
           "emit_progress"]

_BUDGET_FIELDS = ("max_conflicts", "max_decisions", "max_propagations",
                  "max_seconds", "max_literals")


# ----------------------------------------------------------------------
# Streaming progress (worker -> parent)
# ----------------------------------------------------------------------
# The pool's worker loop installs a sink bound to the worker's IPC pipe
# for the duration of each task; cells whose payload asks for streaming
# (``stream: True``) then push per-bound records through it while the
# sweep is still running.  In-process execution leaves it None.
_PROGRESS_SINK: Optional[Any] = None


def set_progress_sink(sink) -> Any:
    """Install the worker-local progress sink; returns the previous."""
    global _PROGRESS_SINK
    previous = _PROGRESS_SINK
    _PROGRESS_SINK = sink
    return previous


def emit_progress(data: Dict[str, Any]) -> None:
    """Push one plain-data progress record to the installed sink."""
    if _PROGRESS_SINK is not None:
        _PROGRESS_SINK(data)


def budget_to_dict(budget: Optional[Budget]) -> Optional[Dict[str, Any]]:
    """Budget -> plain dict (None stays None)."""
    if budget is None:
        return None
    return {f: getattr(budget, f) for f in _BUDGET_FIELDS}


def budget_from_dict(data: Optional[Dict[str, Any]]) -> Optional[Budget]:
    """Inverse of :func:`budget_to_dict`."""
    if data is None:
        return None
    return Budget(**{f: data.get(f) for f in _BUDGET_FIELDS})


def make_cell_payload(system: TransitionSystem, final: Expr, k: int,
                      method: str, semantics: str = "exact",
                      budget: Budget | None = None,
                      options: Dict[str, Any] | None = None,
                      reduce: str = "off",
                      telemetry: bool = False,
                      kind: str = "check",
                      stream: bool = False) -> Dict[str, Any]:
    """Bundle one reachability query for execution in a worker.

    The system and target expression ride along as live objects —
    :class:`~repro.logic.expr.Expr` pickles via re-interning — so the
    payload works under both fork and spawn start methods.  ``reduce``
    (``"auto"`` / ``"off"``) is applied by the worker's session.
    ``telemetry`` asks the worker to attach its trace events and
    metrics snapshot to the outcome (see :func:`execute_cell`).

    ``kind`` selects the query shape: ``"check"`` (one bound ``k``, the
    default) or ``"sweep"`` (the ladder 0..k, answered by
    ``session.sweep``).  ``stream`` asks a sweep cell to push per-bound
    progress records through the worker's progress sink while solving.
    """
    if kind not in ("check", "sweep"):
        raise ValueError(f"unknown cell kind {kind!r}; "
                         f"pick 'check' or 'sweep'")
    return {
        "system": system,
        "final": final,
        "k": k,
        "method": method,
        "semantics": semantics,
        "budget": budget_to_dict(budget),
        "options": dict(options or {}),
        "reduce": reduce,
        "telemetry": telemetry,
        "kind": kind,
        "stream": stream,
    }


def execute_cell(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one cell payload and return its encoded outcome.

    This is the function worker processes actually call; it never
    raises — solver errors are folded into an ``error`` outcome so a
    bad cell cannot take down its worker.

    When the payload carries ``telemetry: True`` a fresh worker-local
    :class:`~repro.telemetry.trace.Tracer` and
    :class:`~repro.telemetry.metrics.MetricsRegistry` are installed for
    the duration of the cell (so a fork-inherited parent tracer never
    records worker events) and their contents ride back on the outcome
    under ``trace_events`` / ``metrics`` / ``worker_pid``, ready for
    the parent to merge into one timeline.
    """
    telemetry = bool(payload.get("telemetry"))
    kind = payload.get("kind", "check")
    tracer: Optional[Tracer] = None
    registry: Optional[MetricsRegistry] = None
    if telemetry:
        tracer = Tracer()
        registry = MetricsRegistry()
        prev_tracer = set_tracer(tracer)
        prev_metrics = set_metrics(registry)
    try:
        with measure_time() as timing:
            try:
                # Explicit None check: an empty Tracer is falsy
                # (it has __len__), so `tracer or NULL_TRACER` would
                # silently discard it.
                span_tracer = NULL_TRACER if tracer is None else tracer
                with span_tracer.span(
                        "worker.cell", method=payload["method"],
                        k=payload["k"], kind=kind):
                    with BmcSession(payload["system"],
                                    properties={
                                        "target": payload["final"]},
                                    reduce=payload.get("reduce", "off")
                                    ) as session:
                        if kind == "sweep":
                            on_bound = None
                            if payload.get("stream"):
                                on_bound = _progress_observer()
                            sweep = session.sweep(
                                payload["k"],
                                method=payload["method"],
                                budget=budget_from_dict(
                                    payload.get("budget")),
                                on_bound=on_bound,
                                **payload.get("options", {}))
                            outcome = encode_sweep_outcome(sweep)
                        else:
                            result = session.check(
                                payload["k"],
                                method=payload["method"],
                                semantics=payload.get("semantics",
                                                      "exact"),
                                budget=budget_from_dict(
                                    payload.get("budget")),
                                **payload.get("options", {}))
                            outcome = encode_outcome(result)
            except Exception:
                outcome = {
                    "status": SolveResult.UNKNOWN.name,
                    "k": payload["k"],
                    "method": payload["method"],
                    "seconds": 0.0,
                    "stats": {},
                    "trace": None,
                    "error": traceback.format_exc(limit=8),
                }
    finally:
        if telemetry:
            set_tracer(prev_tracer)
            set_metrics(prev_metrics)
    outcome["wall_seconds"] = timing.wall_seconds
    outcome["cpu_seconds"] = timing.cpu_seconds
    if telemetry:
        outcome["trace_events"] = tracer.drain()
        outcome["metrics"] = registry.snapshot()
        outcome["worker_pid"] = os.getpid()
    return outcome


def _progress_observer():
    """An ``on_bound`` observer that streams through the progress sink."""
    def observe(bound: BoundResult) -> None:
        emit_progress({
            "k": bound.k,
            "status": bound.status.name,
            "seconds": bound.seconds,
            "cumulative_seconds": bound.cumulative_seconds,
            "proved": bool(bound.proved),
        })
    return observe


def encode_sweep_outcome(sweep: SweepResult) -> Dict[str, Any]:
    """SweepResult -> plain-data dict, check-outcome compatible.

    The common fields (``status`` / ``k`` / ``trace`` / ...) carry the
    sweep's verdict so every check-outcome consumer works unchanged;
    ``kind: "sweep"`` plus ``max_k`` / ``per_bound`` preserve the
    ladder itself.
    """
    trace = None
    if sweep.trace is not None:
        trace = {"states": [dict(s) for s in sweep.trace.states],
                 "inputs": [dict(i) for i in sweep.trace.inputs]}
    shortest = sweep.shortest_k
    return {
        "status": sweep.status.name,
        "k": shortest if shortest is not None else sweep.max_k,
        "method": sweep.method,
        "seconds": sweep.seconds,
        "stats": {"bounds_checked": len(sweep.per_bound)},
        "trace": trace,
        "proved": bool(sweep.proved),
        "invariant": None,
        "error": None,
        "kind": "sweep",
        "max_k": sweep.max_k,
        "per_bound": [{
            "k": b.k,
            "status": b.status.name,
            "seconds": b.seconds,
            "cumulative_seconds": b.cumulative_seconds,
            "proved": bool(b.proved),
        } for b in sweep.per_bound],
    }


def encode_outcome(result: BmcResult) -> Dict[str, Any]:
    """BmcResult -> plain-data dict.

    ``invariant`` rides along as a live :class:`~repro.logic.expr.Expr`
    (it pickles via re-interning, like the payload's system/target);
    cache writers must strip it first — the result cache stores JSON.
    """
    trace = None
    if result.trace is not None:
        trace = {"states": [dict(s) for s in result.trace.states],
                 "inputs": [dict(i) for i in result.trace.inputs]}
    return {
        "status": result.status.name,
        "k": result.k,
        "method": result.method,
        "seconds": result.seconds,
        "stats": dict(result.stats),
        "trace": trace,
        "proved": bool(result.proved),
        "invariant": result.invariant,
        "error": None,
    }


def decode_trace(data: Optional[Dict[str, Any]]) -> Optional[Trace]:
    if data is None:
        return None
    return Trace(data["states"], data["inputs"])


def decode_outcome(outcome: Dict[str, Any]) -> Dict[str, Any]:
    """Plain dict -> dict with live SolveResult / Trace objects."""
    out = dict(outcome)
    out["status"] = SolveResult[outcome["status"]]
    out["trace"] = decode_trace(outcome.get("trace"))
    out["proved"] = bool(outcome.get("proved", False))
    out.setdefault("invariant", None)
    out.setdefault("cancelled", False)
    return out


def outcome_to_result(outcome: Dict[str, Any]) -> BmcResult:
    """Rebuild a :class:`BmcResult` from an encoded outcome."""
    decoded = decode_outcome(outcome)
    return BmcResult(decoded["status"], decoded["trace"], decoded["k"],
                     decoded["method"], decoded["seconds"],
                     decoded["stats"], proved=decoded["proved"],
                     invariant=decoded["invariant"])
