"""A process pool specialised for racing and batching BMC queries.

``multiprocessing.Pool`` gives no handle on *which* worker runs what,
cannot hard-kill a task that overshot its wall budget, and funnels
every task through one queue.  :class:`WorkerPool` instead keeps one
pipe per worker, so the parent always knows which worker started which
task and when — that makes hard wall-clock enforcement (terminate and
respawn the worker, record UNKNOWN) and per-worker attribution exact.

Workers execute :func:`repro.portfolio.ipc.execute_cell`; resource
budgets (conflicts / literals / solver-side wall clock) are enforced
*inside* the worker by the existing :class:`~repro.sat.types.Budget`
machinery, while the pool's ``wall_timeout`` is the outer backstop for
hung or runaway cells.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import signal
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..sat.types import install_stop_check
from .ipc import execute_cell, set_progress_sink

__all__ = ["Task", "WorkerPool", "default_jobs", "pool_context"]

_STOP = None          # sentinel telling a worker loop to exit
_PROGRESS = "progress"  # tag of a worker->parent streaming message


def default_jobs() -> int:
    """Default worker count: all cores, capped to keep laptops usable."""
    return max(1, min(8, os.cpu_count() or 1))


def pool_context() -> multiprocessing.context.BaseContext:
    """The multiprocessing context used by the portfolio subsystem.

    Fork is preferred: workers inherit the hash-consing table and the
    built model suite, so task dispatch is cheap.  Everything sent over
    pipes is picklable anyway, so spawn-only platforms still work.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context()


class Task:
    """One unit of pool work: an opaque payload plus scheduling limits."""

    __slots__ = ("task_id", "payload", "wall_timeout")

    def __init__(self, task_id: int, payload: Dict[str, Any],
                 wall_timeout: Optional[float] = None) -> None:
        self.task_id = task_id
        self.payload = payload
        self.wall_timeout = wall_timeout

    def __repr__(self) -> str:  # pragma: no cover
        return f"Task({self.task_id}, timeout={self.wall_timeout})"


def _worker_main(conn, worker_name: str,
                 execute: Callable[[Dict[str, Any]], Dict[str, Any]],
                 stop_event) -> None:
    """Worker loop: receive (task_id, payload), execute, reply.

    ``stop_event`` is this worker's cooperative-cancellation flag: the
    parent sets it to abandon the *current* task mid-solve (the solver
    aborts at its next budget checkpoint and the worker stays alive for
    the next task).  The installed stop check also watches the parent
    pid, so a worker orphaned by a hard parent death (SIGKILL — no
    chance to run shutdown) exits instead of spinning forever.

    SIGINT is ignored: a terminal Ctrl-C reaches the whole process
    group, and shutdown must stay coordinated by the parent (which
    catches the KeyboardInterrupt and reaps every child).
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    parent_pid = os.getppid()
    install_stop_check(
        lambda: stop_event.is_set() or os.getppid() != parent_pid)
    while True:
        try:
            # Never block in recv() without watching the parent: with
            # the fork context each worker inherits its *own* parent
            # end of the pipe (it exists when Process.start() forks),
            # so parent death alone never EOFs this connection — an
            # orphaned idle worker would sleep in recv() forever.
            while not conn.poll(1.0):
                if os.getppid() != parent_pid:
                    conn.close()
                    return
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):  # pragma: no cover
            break
        if msg is _STOP:
            break
        task_id, payload = msg

        def _send_progress(data: Dict[str, Any], _tid=task_id) -> None:
            try:
                conn.send((_PROGRESS, _tid, data))
            except (BrokenPipeError, EOFError, OSError):
                pass
        set_progress_sink(_send_progress)
        try:
            outcome = execute(payload)
        finally:
            set_progress_sink(None)
        outcome["worker"] = worker_name
        outcome["worker_pid"] = os.getpid()
        if stop_event.is_set():
            outcome["cancelled"] = True
        try:
            conn.send((task_id, outcome))
        except (BrokenPipeError, EOFError):  # pragma: no cover
            break
    conn.close()


class _WorkerHandle:
    __slots__ = ("process", "conn", "name", "task", "started_at",
                 "stop_event")

    def __init__(self, process, conn, name: str, stop_event) -> None:
        self.process = process
        self.conn = conn
        self.name = name
        self.task: Optional[Task] = None
        self.started_at = 0.0
        self.stop_event = stop_event


class WorkerPool:
    """Fixed-size pool of single-task worker processes.

    Usage::

        with WorkerPool(jobs=4) as pool:
            outcomes = pool.run([Task(0, payload0), Task(1, payload1)])

    ``run`` returns ``{task_id: outcome}`` where each outcome is the
    plain dict produced by the worker, or a synthesized UNKNOWN outcome
    with ``timed_out=True`` when the pool had to kill the worker.
    """

    def __init__(self, jobs: Optional[int] = None,
                 execute: Callable[[Dict[str, Any]], Dict[str, Any]]
                 = execute_cell,
                 on_progress: Optional[Callable[[int, Dict[str, Any]],
                                                None]] = None) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs if jobs is not None else default_jobs()
        self._execute = execute
        self._on_progress = on_progress
        self._ctx = pool_context()
        self._workers: List[_WorkerHandle] = []
        self._pending: List[Task] = []          # dispatched LIFO from end
        self._results: Dict[int, Dict[str, Any]] = {}
        self._respawns = 0
        self._cancelled = 0
        self._closed = False
        # Self-pipe: interrupt() (any thread) wakes a parent blocked in
        # collect()'s connection.wait, so new submissions and cancels
        # take effect immediately instead of after the poll timeout.
        self._wake_r, self._wake_w = os.pipe()
        os.set_blocking(self._wake_r, False)
        for i in range(self.jobs):
            self._workers.append(self._spawn(f"w{i}"))

    # ------------------------------------------------------------------
    def _spawn(self, name: str) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe()
        stop_event = self._ctx.Event()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, name, self._execute, stop_event),
            daemon=True, name=f"repro-portfolio-{name}")
        process.start()
        child_conn.close()
        return _WorkerHandle(process, parent_conn, name, stop_event)

    # ------------------------------------------------------------------
    def submit(self, task: Task) -> None:
        """Queue a task.  Dispatch order is the submission order, so the
        scheduler controls priority by submitting hardest-first."""
        if self._closed:
            raise RuntimeError("pool is shut down")
        self._pending.insert(0, task)
        self._dispatch()

    def _dispatch(self) -> None:
        for worker in self._workers:
            if not self._pending:
                return
            if worker.task is None:
                task = self._pending.pop()
                worker.task = task
                worker.started_at = time.perf_counter()
                # Reset here, not in the worker: a cancel aimed at the
                # task while it is still in flight on the pipe must not
                # be wiped by a worker-side clear racing with it.
                worker.stop_event.clear()
                worker.conn.send((task.task_id, task.payload))

    # ------------------------------------------------------------------
    @property
    def busy(self) -> int:
        return sum(1 for w in self._workers if w.task is not None)

    @property
    def outstanding(self) -> int:
        return self.busy + len(self._pending)

    @property
    def respawns(self) -> int:
        """Number of workers killed for wall-timeout overruns."""
        return self._respawns

    @property
    def cancelled(self) -> int:
        """Number of tasks cancelled via :meth:`cancel`."""
        return self._cancelled

    # ------------------------------------------------------------------
    def interrupt(self) -> None:
        """Wake a :meth:`collect` blocked in its poll (thread-safe).

        The daemon's event loop calls this after enqueueing work for
        the thread that owns the pool, so dispatch latency is bounded
        by a pipe write instead of the poll timeout.
        """
        try:
            os.write(self._wake_w, b"x")
        except OSError:  # pragma: no cover - full pipe is still a wake
            pass

    def _drain_wake(self) -> None:
        try:
            while os.read(self._wake_r, 4096):
                pass
        except (BlockingIOError, OSError):
            pass

    # ------------------------------------------------------------------
    def cancel(self, task_id: int) -> Optional[str]:
        """Cooperatively cancel a task; returns where it was found.

        * ``"queued"`` — removed from the pending queue; a synthesized
          cancelled outcome is recorded immediately.
        * ``"running"`` — the owning worker's stop event is set; the
          solver aborts at its next budget checkpoint and the worker
          reports a ``cancelled`` outcome *without* being killed, so
          its warm process is immediately reusable.
        * ``None`` — no such task is outstanding (already finished).
        """
        for i, task in enumerate(self._pending):
            if task.task_id == task_id:
                del self._pending[i]
                self._cancelled += 1
                self._results[task_id] = {
                    "status": "UNKNOWN",
                    "k": task.payload.get("k", -1),
                    "method": task.payload.get("method", "?"),
                    "seconds": 0.0, "wall_seconds": 0.0,
                    "cpu_seconds": 0.0, "stats": {}, "trace": None,
                    "error": None, "cancelled": True,
                }
                return "queued"
        for worker in self._workers:
            if worker.task is not None and \
                    worker.task.task_id == task_id:
                self._cancelled += 1
                worker.stop_event.set()
                return "running"
        return None

    # ------------------------------------------------------------------
    def _deadline_slack(self, now: float) -> Optional[float]:
        """Seconds until the earliest running-task deadline (None = no
        deadline armed)."""
        slack = None
        for worker in self._workers:
            if worker.task is None or worker.task.wall_timeout is None:
                continue
            remaining = (worker.started_at + worker.task.wall_timeout) - now
            if slack is None or remaining < slack:
                slack = remaining
        return slack

    def _reap_timeouts(self, now: float) -> int:
        reaped = 0
        for i, worker in enumerate(self._workers):
            task = worker.task
            if task is None or task.wall_timeout is None:
                continue
            if now - worker.started_at < task.wall_timeout:
                continue
            # Hard kill: the cell gets an UNKNOWN outcome and the slot
            # is refilled with a fresh process.
            worker.process.terminate()
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover
                worker.process.kill()
                worker.process.join(timeout=5.0)
            worker.conn.close()
            self._results[task.task_id] = {
                "status": "UNKNOWN",
                "k": task.payload.get("k", -1),
                "method": task.payload.get("method", "?"),
                "seconds": now - worker.started_at,
                "wall_seconds": now - worker.started_at,
                "cpu_seconds": 0.0,
                "stats": {},
                "trace": None,
                "error": f"wall timeout after {task.wall_timeout:.3f} s",
                "timed_out": True,
                "worker": worker.name,
            }
            self._respawns += 1
            reaped += 1
            self._workers[i] = self._spawn(worker.name)
        return reaped

    def collect(self, timeout: Optional[float] = None) -> int:
        """Receive finished outcomes; returns how many arrived.

        Blocks up to ``timeout`` seconds (None = until at least one
        running task finishes or times out).  Streaming progress
        messages from workers are delivered to the ``on_progress``
        callback as they arrive; they do not count as finished
        outcomes.  An :meth:`interrupt` from another thread makes a
        blocked call return early (possibly with 0).
        """
        got = 0
        start = time.perf_counter()
        while True:
            now = time.perf_counter()
            got += self._reap_timeouts(now)
            self._dispatch()
            busy = [w for w in self._workers if w.task is not None]
            if got or not busy:
                self._drain_wake()
                return got
            slack = self._deadline_slack(now)
            wait_for = slack
            if timeout is not None:
                budgeted = timeout - (now - start)
                if budgeted <= 0:
                    return got
                wait_for = budgeted if wait_for is None \
                    else min(wait_for, budgeted)
            ready = multiprocessing.connection.wait(
                [w.conn for w in busy] + [self._wake_r],
                timeout=None if wait_for is None else max(0.0, wait_for))
            woken = self._wake_r in ready
            if woken:
                self._drain_wake()
            for conn in ready:
                if conn is self._wake_r:
                    continue
                worker = next(w for w in busy if w.conn is conn)
                try:
                    msg = conn.recv()
                except (EOFError, OSError):  # worker died mid-task
                    task = worker.task
                    assert task is not None
                    self._results[task.task_id] = {
                        "status": "UNKNOWN",
                        "k": task.payload.get("k", -1),
                        "method": task.payload.get("method", "?"),
                        "seconds": 0.0, "wall_seconds": 0.0,
                        "cpu_seconds": 0.0, "stats": {}, "trace": None,
                        "error": "worker died", "worker": worker.name,
                    }
                    idx = self._workers.index(worker)
                    worker.conn.close()
                    worker.process.join(timeout=5.0)
                    self._workers[idx] = self._spawn(worker.name)
                    worker.task = None
                    got += 1
                    continue
                if isinstance(msg, tuple) and len(msg) == 3 \
                        and msg[0] == _PROGRESS:
                    _, task_id, data = msg
                    if self._on_progress is not None:
                        self._on_progress(task_id, data)
                    continue
                task_id, outcome = msg
                self._results[task_id] = outcome
                worker.task = None
                got += 1
            if got:
                self._dispatch()
                return got
            if woken:
                return got

    # ------------------------------------------------------------------
    def take_results(self) -> Dict[int, Dict[str, Any]]:
        """Hand over (and clear) every outcome collected so far."""
        out, self._results = self._results, {}
        return out

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[Task]) -> Dict[int, Dict[str, Any]]:
        """Run a batch to completion; returns ``{task_id: outcome}``.

        A KeyboardInterrupt mid-batch (the workers themselves ignore
        SIGINT) shuts the pool down — every child reaped, every pipe
        drained — before the interrupt propagates, so a Ctrl-C'd run
        never leaks orphan solver processes.
        """
        try:
            for task in tasks:
                self.submit(task)
            while self.outstanding:
                self.collect()
        except KeyboardInterrupt:
            self.shutdown(grace=0.5)
            raise
        return self.take_results()

    # ------------------------------------------------------------------
    def shutdown(self, grace: float = 2.0) -> None:
        """Stop all workers: cancel, drain, reap.

        Busy workers get their stop event set and up to ``grace``
        seconds to abort cooperatively (their in-flight outcomes are
        drained into :meth:`take_results`, and their pipes emptied, so
        nothing is left buffered in a kernel pipe); whatever is still
        running after the grace window is terminated.  Every child is
        joined — no orphans survive this call — and the wake pipe is
        closed.
        """
        if self._closed:
            return
        self._closed = True
        self._pending.clear()
        for worker in self._workers:
            try:
                if worker.task is None:
                    worker.conn.send(_STOP)
                else:
                    worker.stop_event.set()
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        deadline = time.monotonic() + max(0.0, grace)
        while True:
            busy = [w for w in self._workers if w.task is not None]
            remaining = deadline - time.monotonic()
            if not busy or remaining <= 0:
                break
            ready = multiprocessing.connection.wait(
                [w.conn for w in busy], timeout=remaining)
            for conn in ready:
                worker = next(w for w in busy if w.conn is conn)
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    worker.task = None
                    continue
                if isinstance(msg, tuple) and len(msg) == 3 \
                        and msg[0] == _PROGRESS:
                    continue            # drained and dropped
                task_id, outcome = msg
                self._results[task_id] = outcome
                worker.task = None
                try:
                    worker.conn.send(_STOP)
                except (BrokenPipeError, OSError):  # pragma: no cover
                    pass
        for worker in self._workers:
            if worker.task is not None and worker.process.is_alive():
                worker.process.terminate()
        for worker in self._workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover
                worker.process.kill()
                worker.process.join(timeout=5.0)
            worker.conn.close()
        self._workers = []
        try:
            os.close(self._wake_r)
            os.close(self._wake_w)
        except OSError:  # pragma: no cover
            pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __del__(self) -> None:  # pragma: no cover
        try:
            self.shutdown(grace=0.0)
        except Exception:
            pass
