"""A process pool specialised for racing and batching BMC queries.

``multiprocessing.Pool`` gives no handle on *which* worker runs what,
cannot hard-kill a task that overshot its wall budget, and funnels
every task through one queue.  :class:`WorkerPool` instead keeps one
pipe per worker, so the parent always knows which worker started which
task and when — that makes hard wall-clock enforcement (terminate and
respawn the worker, record UNKNOWN) and per-worker attribution exact.

Workers execute :func:`repro.portfolio.ipc.execute_cell`; resource
budgets (conflicts / literals / solver-side wall clock) are enforced
*inside* the worker by the existing :class:`~repro.sat.types.Budget`
machinery, while the pool's ``wall_timeout`` is the outer backstop for
hung or runaway cells.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from .ipc import execute_cell

__all__ = ["Task", "WorkerPool", "default_jobs", "pool_context"]

_STOP = None          # sentinel telling a worker loop to exit


def default_jobs() -> int:
    """Default worker count: all cores, capped to keep laptops usable."""
    return max(1, min(8, os.cpu_count() or 1))


def pool_context() -> multiprocessing.context.BaseContext:
    """The multiprocessing context used by the portfolio subsystem.

    Fork is preferred: workers inherit the hash-consing table and the
    built model suite, so task dispatch is cheap.  Everything sent over
    pipes is picklable anyway, so spawn-only platforms still work.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context()


class Task:
    """One unit of pool work: an opaque payload plus scheduling limits."""

    __slots__ = ("task_id", "payload", "wall_timeout")

    def __init__(self, task_id: int, payload: Dict[str, Any],
                 wall_timeout: Optional[float] = None) -> None:
        self.task_id = task_id
        self.payload = payload
        self.wall_timeout = wall_timeout

    def __repr__(self) -> str:  # pragma: no cover
        return f"Task({self.task_id}, timeout={self.wall_timeout})"


def _worker_main(conn, worker_name: str,
                 execute: Callable[[Dict[str, Any]], Dict[str, Any]]
                 ) -> None:
    """Worker loop: receive (task_id, payload), execute, reply."""
    while True:
        try:
            msg = conn.recv()
        except (EOFError, KeyboardInterrupt):  # pragma: no cover
            break
        if msg is _STOP:
            break
        task_id, payload = msg
        outcome = execute(payload)
        outcome["worker"] = worker_name
        outcome["worker_pid"] = os.getpid()
        try:
            conn.send((task_id, outcome))
        except (BrokenPipeError, EOFError):  # pragma: no cover
            break
    conn.close()


class _WorkerHandle:
    __slots__ = ("process", "conn", "name", "task", "started_at")

    def __init__(self, process, conn, name: str) -> None:
        self.process = process
        self.conn = conn
        self.name = name
        self.task: Optional[Task] = None
        self.started_at = 0.0


class WorkerPool:
    """Fixed-size pool of single-task worker processes.

    Usage::

        with WorkerPool(jobs=4) as pool:
            outcomes = pool.run([Task(0, payload0), Task(1, payload1)])

    ``run`` returns ``{task_id: outcome}`` where each outcome is the
    plain dict produced by the worker, or a synthesized UNKNOWN outcome
    with ``timed_out=True`` when the pool had to kill the worker.
    """

    def __init__(self, jobs: Optional[int] = None,
                 execute: Callable[[Dict[str, Any]], Dict[str, Any]]
                 = execute_cell) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs if jobs is not None else default_jobs()
        self._execute = execute
        self._ctx = pool_context()
        self._workers: List[_WorkerHandle] = []
        self._pending: List[Task] = []          # dispatched LIFO from end
        self._results: Dict[int, Dict[str, Any]] = {}
        self._respawns = 0
        self._closed = False
        for i in range(self.jobs):
            self._workers.append(self._spawn(f"w{i}"))

    # ------------------------------------------------------------------
    def _spawn(self, name: str) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main, args=(child_conn, name, self._execute),
            daemon=True, name=f"repro-portfolio-{name}")
        process.start()
        child_conn.close()
        return _WorkerHandle(process, parent_conn, name)

    # ------------------------------------------------------------------
    def submit(self, task: Task) -> None:
        """Queue a task.  Dispatch order is the submission order, so the
        scheduler controls priority by submitting hardest-first."""
        if self._closed:
            raise RuntimeError("pool is shut down")
        self._pending.insert(0, task)
        self._dispatch()

    def _dispatch(self) -> None:
        for worker in self._workers:
            if not self._pending:
                return
            if worker.task is None:
                task = self._pending.pop()
                worker.task = task
                worker.started_at = time.perf_counter()
                worker.conn.send((task.task_id, task.payload))

    # ------------------------------------------------------------------
    @property
    def busy(self) -> int:
        return sum(1 for w in self._workers if w.task is not None)

    @property
    def outstanding(self) -> int:
        return self.busy + len(self._pending)

    @property
    def respawns(self) -> int:
        """Number of workers killed for wall-timeout overruns."""
        return self._respawns

    # ------------------------------------------------------------------
    def _deadline_slack(self, now: float) -> Optional[float]:
        """Seconds until the earliest running-task deadline (None = no
        deadline armed)."""
        slack = None
        for worker in self._workers:
            if worker.task is None or worker.task.wall_timeout is None:
                continue
            remaining = (worker.started_at + worker.task.wall_timeout) - now
            if slack is None or remaining < slack:
                slack = remaining
        return slack

    def _reap_timeouts(self, now: float) -> int:
        reaped = 0
        for i, worker in enumerate(self._workers):
            task = worker.task
            if task is None or task.wall_timeout is None:
                continue
            if now - worker.started_at < task.wall_timeout:
                continue
            # Hard kill: the cell gets an UNKNOWN outcome and the slot
            # is refilled with a fresh process.
            worker.process.terminate()
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover
                worker.process.kill()
                worker.process.join(timeout=5.0)
            worker.conn.close()
            self._results[task.task_id] = {
                "status": "UNKNOWN",
                "k": task.payload.get("k", -1),
                "method": task.payload.get("method", "?"),
                "seconds": now - worker.started_at,
                "wall_seconds": now - worker.started_at,
                "cpu_seconds": 0.0,
                "stats": {},
                "trace": None,
                "error": f"wall timeout after {task.wall_timeout:.3f} s",
                "timed_out": True,
                "worker": worker.name,
            }
            self._respawns += 1
            reaped += 1
            self._workers[i] = self._spawn(worker.name)
        return reaped

    def collect(self, timeout: Optional[float] = None) -> int:
        """Receive finished outcomes; returns how many arrived.

        Blocks up to ``timeout`` seconds (None = until at least one
        running task finishes or times out).
        """
        got = 0
        start = time.perf_counter()
        while True:
            now = time.perf_counter()
            got += self._reap_timeouts(now)
            self._dispatch()
            busy = [w for w in self._workers if w.task is not None]
            if got or not busy:
                return got
            slack = self._deadline_slack(now)
            wait_for = slack
            if timeout is not None:
                budgeted = timeout - (now - start)
                if budgeted <= 0:
                    return got
                wait_for = budgeted if wait_for is None \
                    else min(wait_for, budgeted)
            ready = multiprocessing.connection.wait(
                [w.conn for w in busy],
                timeout=None if wait_for is None else max(0.0, wait_for))
            for conn in ready:
                worker = next(w for w in busy if w.conn is conn)
                try:
                    task_id, outcome = conn.recv()
                except (EOFError, OSError):  # worker died mid-task
                    task = worker.task
                    assert task is not None
                    self._results[task.task_id] = {
                        "status": "UNKNOWN",
                        "k": task.payload.get("k", -1),
                        "method": task.payload.get("method", "?"),
                        "seconds": 0.0, "wall_seconds": 0.0,
                        "cpu_seconds": 0.0, "stats": {}, "trace": None,
                        "error": "worker died", "worker": worker.name,
                    }
                    idx = self._workers.index(worker)
                    worker.conn.close()
                    worker.process.join(timeout=5.0)
                    self._workers[idx] = self._spawn(worker.name)
                else:
                    self._results[task_id] = outcome
                worker.task = None
                got += 1
            if got:
                self._dispatch()
                return got

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[Task]) -> Dict[int, Dict[str, Any]]:
        """Run a batch to completion; returns ``{task_id: outcome}``."""
        for task in tasks:
            self.submit(task)
        while self.outstanding:
            self.collect()
        out, self._results = self._results, {}
        return out

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop all workers (graceful, then terminate stragglers)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                if worker.task is None:
                    worker.conn.send(_STOP)
                else:
                    worker.process.terminate()
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        for worker in self._workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover
                worker.process.kill()
                worker.process.join(timeout=5.0)
            worker.conn.close()
        self._workers = []

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __del__(self) -> None:  # pragma: no cover
        try:
            self.shutdown()
        except Exception:
            pass
