"""Race several BMC decision methods on one query.

The paper's evaluation is a head-to-head between jSAT and SAT on the
unrolled formula; this module turns that comparison into an execution
strategy: launch one process per method, take the first *conclusive*
answer, and kill the rest (the pattern SMPT uses for its parallel
BMC/k-induction portfolio).  A SAT claim only wins after its witness
validates — by trace replay when the back end produced a trace, or by
the explicit-state oracle for traceless back ends on small systems —
so a buggy or lucky method cannot poison the portfolio.
"""

from __future__ import annotations

import logging
import multiprocessing.connection
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..bmc.backend import METHODS, BmcResult, backend_class, fan_out_options
from ..bmc.provers import validate_invariant
from ..logic.expr import Expr
from ..sat.types import Budget, SolveResult
from ..system.model import TransitionSystem
from ..system.oracle import ExplicitOracle
from ..system.trace import Trace
from ..telemetry.metrics import current_metrics
from ..telemetry.trace import current_tracer
from .ipc import (decode_outcome, encode_outcome, execute_cell,
                  make_cell_payload)
from .pool import pool_context

logger = logging.getLogger(__name__)

__all__ = ["RaceOutcome", "race", "DEFAULT_RACE_METHODS"]

# sat-unroll and jsat are the two methods the paper finds competitive;
# sat-incremental joins them since it shares sat-unroll's strength on
# single bounds while dominating on sweeps.  The QBF back ends lose so
# reliably that racing them by default would only burn a core.
DEFAULT_RACE_METHODS = ("sat-unroll", "jsat", "sat-incremental")


class RaceOutcome:
    """Result of one portfolio race.

    Attributes
    ----------
    result:
        The winning :class:`BmcResult` (status UNKNOWN when no method
        was conclusive within its budget).
    winner:
        Name of the winning method, or None.
    method_outcomes:
        Per-method terminal state: "won", "cancelled", "inconclusive",
        "invalid-witness", "invalid-proof", "deep-witness" (a prover
        found a real violation beyond the queried bound), or
        "timeout"; when a result cache serves
        the whole race (see ``race(cache=...)``) the recorded winner
        is "cache" and every other method "skipped".
    cancel_latency:
        Wall seconds from the winning answer's arrival until every
        loser process was confirmed dead.
    loser_pids:
        PIDs of the cancelled processes (all dead on return; tests use
        these to prove the kill actually happened).
    seconds:
        Total wall time of the race.
    """

    def __init__(self, result: BmcResult, winner: Optional[str],
                 method_outcomes: Dict[str, str], cancel_latency: float,
                 loser_pids: List[int], seconds: float) -> None:
        self.result = result
        self.winner = winner
        self.method_outcomes = method_outcomes
        self.cancel_latency = cancel_latency
        self.loser_pids = loser_pids
        self.seconds = seconds

    def __repr__(self) -> str:  # pragma: no cover
        return (f"RaceOutcome(winner={self.winner!r}, "
                f"{self.result.status.name}, {self.seconds:.3f}s, "
                f"cancel={self.cancel_latency * 1e3:.1f}ms)")


def ensure_methods_spawnable(methods: Sequence[str], ctx) -> None:
    """Reject custom backends up front on spawn-start platforms.

    Fork workers inherit the parent's registry, but a spawned worker
    re-imports repro and registers only the built-in backends, so a
    custom method would pass parent-side validation and then kill
    every worker with "unknown method".  Raise here, in the parent,
    with an actionable message instead.
    """
    if ctx.get_start_method() == "fork":
        return
    foreign = [m for m in methods
               if not backend_class(m).__module__.startswith("repro.bmc.")]
    if foreign:
        raise ValueError(
            f"custom backend(s) {foreign} cannot run in worker "
            f"processes on a {ctx.get_start_method()!r}-start platform "
            f"(spawned workers re-import repro with only the built-in "
            f"backends registered); run them in-process via BmcSession")


def _race_child(conn, payload: Dict[str, Any]) -> None:
    outcome = execute_cell(payload)
    try:
        conn.send(outcome)
    except (BrokenPipeError, EOFError):  # pragma: no cover - lost race
        pass
    conn.close()


def _validate_sat(system: TransitionSystem, final: Expr, k: int,
                  semantics: str, trace: Optional[Trace]) -> Optional[bool]:
    """True/False when the SAT claim could be checked, None otherwise."""
    if trace is not None:
        if not trace.is_valid(system, final):
            return False
        if semantics == "exact" and trace.length != k:
            return False
        if semantics == "within" and trace.length > k:
            return False
        return True
    # Traceless SAT (e.g. qbf-squaring): cross-check with the explicit
    # oracle when the system is small enough to enumerate.
    try:
        oracle = ExplicitOracle(system)
    except ValueError:
        return None
    if semantics == "exact":
        return oracle.reachable_in_exactly(final, k)
    return oracle.reachable_within(final, k)


def race(system: TransitionSystem, final: Expr, k: int,
         methods: Sequence[str] = DEFAULT_RACE_METHODS,
         semantics: str = "exact",
         budget: Budget | None = None,
         wall_timeout: Optional[float] = None,
         validate: bool = True,
         method_options: Optional[Dict[str, Dict[str, Any]]] = None,
         reduce: object = "off",
         cache: Optional[Any] = None,
         prover: Optional[str] = None,
         prover_max_k: Optional[int] = None,
         sim_tier: bool = True,
         **options) -> RaceOutcome:
    """Run ``methods`` concurrently; first conclusive answer wins.

    ``wall_timeout`` is the hard outer limit: when it expires every
    child is killed and the race returns UNKNOWN.  It defaults to three
    times the budget's ``max_seconds`` (plus setup slack) when that is
    set, else unlimited.

    ``methods`` may name any non-composite backend in the registry
    (custom ones included, as long as registration happens before the
    worker processes fork).  ``**options`` are broadcast: each raced
    method takes the keys its typed options class declares and ignores
    the rest, but a key *no* raced method declares raises —
    misspellings cannot silently kill a contender.  ``method_options``
    maps a method name to options for that method alone (these win
    over broadcast keys).

    ``reduce`` (``"off"`` / ``"auto"`` / a :class:`repro.reduce.Pipeline`)
    runs the model-reduction pipeline once in the parent; every
    contender then races on the same reduced system, witnesses are
    validated in the reduced vocabulary, and the winning trace is
    lifted back to a full-width path over the original system.

    ``cache`` (a :class:`~repro.portfolio.cache.ResultCache`) serves a
    previously-raced identical query without spawning anything — the
    returned result carries ``stats["cache_served"] = True`` and the
    method outcomes record "cache" / "skipped" — and stores every
    conclusive live win.  Races whose ``reduce`` knob is a custom
    :class:`~repro.reduce.Pipeline` object are never cached (the
    pipeline cannot participate in the fingerprint).

    ``sim_tier`` (default on) runs the bit-parallel random-simulation
    falsifier (:func:`repro.sim.presolve`) in the parent before any
    worker spawns: a validated simulation witness settles the race in
    milliseconds with zero solver processes (winner ``"simulation"``,
    every solver lane ``"skipped"``).  The tier is SAT-only and
    strictly wall-bounded, so switching it off changes timing, never
    verdicts.

    ``prover`` pairs the falsifier lanes with one unbounded prover
    (any registered backend whose ``proves_unbounded`` flag is set:
    ``"k-induction"`` / ``"interpolation"`` / ``"diameter"``).  The
    prover races the same query at depth ``prover_max_k`` (default:
    well past ``k``) under ``within`` semantics; a *proved* UNSAT wins
    any query — after its inductive invariant validates in the parent
    — so the race can return a conclusive safety verdict instead of
    UNKNOWN-at-bound-k.  The winning result then carries
    ``proved=True`` and the invariant (in the raced — possibly
    reduced — vocabulary).  A prover SAT wins only when its witness
    also answers the bounded query (``length <= k`` for within,
    ``== k`` for exact); a deeper witness is recorded as
    ``"deep-witness"`` and does not decide the race.  With a prover
    attached, ``methods`` may be empty (prover-only race).
    """
    from ..reduce import reduce_for_target, resolve_reduce
    methods = list(methods)
    if not methods and prover is None:
        raise ValueError("race needs at least one method or a prover")
    unknown = [m for m in methods if m not in METHODS]
    if unknown:
        raise ValueError(f"unknown race methods {unknown}; "
                         f"pick from {METHODS}")
    prover_k = k
    if prover is not None:
        if prover not in METHODS:
            raise ValueError(f"unknown prover {prover!r}; "
                             f"pick from {METHODS}")
        if not backend_class(prover).proves_unbounded:
            raise ValueError(
                f"{prover!r} is a bounded falsifier, not a prover; "
                f"pass it via methods=[...] instead")
        if prover in methods:
            raise ValueError(
                f"{prover!r} is both a raced method and the prover; "
                f"list it only once")
        # The prover's ladder must cover the bounded query (so its
        # bounded UNSAT alone answers it) and should reach well past
        # it (so induction/diameter have room to close the proof).
        prover_k = max(prover_max_k if prover_max_k is not None else 0,
                       2 * k + 16, 24, k)
    if wall_timeout is None and budget is not None \
            and budget.max_seconds is not None:
        wall_timeout = budget.max_seconds * 3.0 + 1.0
    lanes = methods + ([prover] if prover is not None else [])
    per_method_options = fan_out_options(lanes, options,
                                         method_options or {})

    tracer = current_tracer()
    registry = current_metrics()
    race_key = None
    if cache is not None and isinstance(reduce, str):
        from .cache import cell_key
        tag = "race:" + "+".join(sorted(methods))
        if prover is not None:
            tag += f"|prover:{prover}@{prover_k}"
        race_key = cell_key(
            system, final, k, tag,
            semantics, budget,
            {m: sorted(per_method_options[m].items()) for m in lanes},
            reduce)
        cached = cache.get(race_key)
        if cached is not None and cached.get("error") is None \
                and cached["status"] != SolveResult.UNKNOWN.name:
            outcome = decode_outcome(cached)
            winner = outcome["stats"].get("portfolio_winner")
            logger.info("race served from cache (winner %s)", winner)
            tracer.instant("cache.hit", scope="race", k=k,
                           method=str(winner))
            # The invariant was stripped before the put (the cache is
            # JSON); the proved flag survives, so a cached proof still
            # reports conclusively.
            result = BmcResult(outcome["status"], outcome["trace"], k,
                               "portfolio", 0.0, dict(outcome["stats"]),
                               proved=outcome["proved"])
            result.stats["cache_served"] = True
            result.stats["portfolio_cancelled"] = 0
            method_outcomes = {m: "cache" if m == winner else "skipped"
                               for m in lanes}
            return RaceOutcome(result, winner, method_outcomes,
                               0.0, [], 0.0)

    pipeline = resolve_reduce(reduce)
    reduction = None
    original_system = system
    if pipeline is not None:
        candidate = reduce_for_target(system, final, pipeline)
        if not candidate.is_identity:
            reduction = candidate
            system = candidate.system
            final = candidate.map_expr(final)

    if sim_tier:
        from ..sim import presolve as sim_presolve
        sim_start = time.perf_counter()
        sim_out = sim_presolve(system, final, k, semantics=semantics)
        if sim_out is not None:
            trace = sim_out.trace
            assert trace is not None
            if reduction is not None:
                trace = reduction.lift(trace)
                if validate:
                    trace.validate(original_system)
            elif validate:
                trace.validate(original_system, final)
            sim_seconds = time.perf_counter() - sim_start
            stats = dict(sim_out.stats)
            stats["portfolio_winner"] = "simulation"
            stats["sim_presolved"] = True
            stats["portfolio_cancelled"] = 0
            if reduction is not None:
                stats["reduced_latches"] = len(system.state_vars)
                stats["original_latches"] = \
                    len(original_system.state_vars)
            result = BmcResult(SolveResult.SAT, trace, k, "portfolio",
                               sim_seconds, stats)
            tracer.instant("portfolio.winner", method="simulation", k=k)
            logger.info("race pre-solved by simulation in %.3fs "
                        "(witness length %d)", sim_seconds, trace.length)
            if race_key is not None:
                entry = encode_outcome(result)
                entry["invariant"] = None
                cache.put(race_key, entry)
            method_outcomes = {m: "skipped" for m in lanes}
            method_outcomes["simulation"] = "won"
            return RaceOutcome(result, "simulation", method_outcomes,
                               0.0, [], sim_seconds)

    ctx = pool_context()
    ensure_methods_spawnable(lanes, ctx)
    telemetry = tracer.enabled or registry.enabled
    # Manual enter/exit: the span brackets spawn-to-cancel without
    # reindenting the whole race body; a raised exception simply
    # forfeits the (advisory) parent span.
    race_span = tracer.span("portfolio.race", k=k,
                            methods=",".join(lanes),
                            prover=prover or "none")
    race_span.__enter__()
    start = time.perf_counter()
    children: List[Tuple[str, Any, Any]] = []     # (method, process, conn)
    for method in lanes:
        # The prover lane searches past the query bound (within
        # semantics) so it can both refute deeper and close a proof.
        lane_k = prover_k if method == prover else k
        lane_semantics = "within" if method == prover else semantics
        payload = make_cell_payload(system, final, lane_k, method,
                                    lane_semantics, budget,
                                    per_method_options[method],
                                    telemetry=telemetry)
        parent_conn, child_conn = ctx.Pipe()
        process = ctx.Process(target=_race_child,
                              args=(child_conn, payload), daemon=True,
                              name=f"repro-race-{method}")
        process.start()
        child_conn.close()
        children.append((method, process, parent_conn))

    method_outcomes = {m: "running" for m in lanes}
    winner: Optional[str] = None
    winning: Optional[Dict[str, Any]] = None
    fallback: Optional[Dict[str, Any]] = None     # an UNKNOWN to report
    received: List[Dict[str, Any]] = []           # for telemetry merge
    live = list(children)
    timed_out = False

    while live and winner is None:
        if wall_timeout is not None:
            remaining = wall_timeout - (time.perf_counter() - start)
            if remaining <= 0:
                timed_out = True
                break
        else:
            remaining = None
        ready = multiprocessing.connection.wait(
            [conn for _, _, conn in live], timeout=remaining)
        if not ready:
            timed_out = True
            break
        still_live = []
        for method, process, conn in live:
            if conn not in ready:
                still_live.append((method, process, conn))
                continue
            try:
                outcome = decode_outcome(conn.recv())
            except (EOFError, OSError):
                method_outcomes[method] = "inconclusive"
                continue
            received.append(outcome)
            status = outcome["status"]
            if status is SolveResult.UNKNOWN:
                method_outcomes[method] = "inconclusive"
                if fallback is None or fallback.get("error"):
                    fallback = outcome
                continue
            if method == prover:
                if status is SolveResult.SAT:
                    trace = outcome["trace"]
                    length = trace.length if trace is not None else None
                    if length is None or length > k or \
                            (semantics == "exact" and length != k):
                        # A genuine violation, but deeper than the
                        # bounded query asks about — it cannot decide
                        # this race (the replay check below would
                        # reject it as invalid, which it is not).
                        method_outcomes[method] = "deep-witness"
                        continue
                elif outcome["proved"] and validate \
                        and outcome["invariant"] is not None \
                        and not validate_invariant(system, final,
                                                   outcome["invariant"]):
                    # Interpolation ships an inductive invariant;
                    # re-check it in the parent before letting the
                    # proof win (same distrust as SAT witnesses).
                    method_outcomes[method] = "invalid-proof"
                    continue
                # A bounded prover UNSAT still answers the query:
                # the prover ladder runs to prover_k >= k.
            if status is SolveResult.SAT and validate:
                verdict = _validate_sat(system, final, k, semantics,
                                        outcome["trace"])
                if verdict is False:
                    method_outcomes[method] = "invalid-witness"
                    continue
            winner = method
            winning = outcome
            method_outcomes[method] = "won"
        live = still_live

    # Cancellation: kill whatever is still running.
    cancel_start = time.perf_counter()
    loser_pids: List[int] = []
    for method, process, conn in children:
        if method_outcomes.get(method) in ("won",):
            process.join(timeout=5.0)
            continue
        if process.is_alive():
            loser_pids.append(process.pid)
            process.terminate()
    for method, process, conn in children:
        process.join(timeout=5.0)
        if process.is_alive():  # pragma: no cover - stubborn child
            process.kill()
            process.join(timeout=5.0)
        conn.close()
        if method_outcomes[method] == "running":
            method_outcomes[method] = "timeout" if timed_out else "cancelled"
    cancel_latency = time.perf_counter() - cancel_start
    seconds = time.perf_counter() - start

    if telemetry:
        # Replay worker telemetry into the parent timeline (losers
        # killed before reporting necessarily contribute nothing).
        for outcome in received:
            events = outcome.get("trace_events")
            if events:
                tracer.extend(events)
                pid = outcome.get("worker_pid")
                if pid:
                    tracer.name_lane(pid, f"race:{outcome['method']}")
            snapshot = outcome.get("metrics")
            if snapshot:
                registry.merge(snapshot)
        if winner is not None:
            tracer.instant("portfolio.winner", method=winner, k=k)
    race_span.set(winner=winner or "none")
    race_span.__exit__(None, None, None)
    logger.info("race finished in %.3fs: winner=%s outcomes=%s",
                seconds, winner, method_outcomes)

    if winning is not None:
        trace = winning["trace"]
        if reduction is not None and trace is not None:
            # Workers validated in the reduced vocabulary; the lifted
            # full-width path must replay on the original system too
            # (the same double check every session/checker path runs).
            trace = reduction.lift(trace)
            if validate:
                trace.validate(original_system)
        # An invariant stays in the raced (possibly reduced)
        # vocabulary — it was validated against that system above and
        # has no full-width counterpart (reduction proved the dropped
        # latches irrelevant to this target).
        result = BmcResult(winning["status"], trace, k,
                           "portfolio", seconds, dict(winning["stats"]),
                           proved=winning["proved"],
                           invariant=winning["invariant"])
        result.stats["portfolio_winner"] = winner
        if reduction is not None:
            result.stats["reduced_latches"] = len(system.state_vars)
            result.stats["original_latches"] = \
                len(original_system.state_vars)
    else:
        stats = dict(fallback["stats"]) if fallback else {}
        result = BmcResult(SolveResult.UNKNOWN,
                           None, k, "portfolio", seconds, stats)
    result.stats["portfolio_cancelled"] = len(loser_pids)
    if race_key is not None and winning is not None:
        entry = encode_outcome(result)
        entry["invariant"] = None      # live Expr; the cache is JSON
        cache.put(race_key, entry)
    return RaceOutcome(result, winner, method_outcomes, cancel_latency,
                       loser_pids, seconds)
