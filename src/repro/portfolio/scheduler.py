"""Shard a (suite × methods) matrix across the worker pool.

The scheduler owns three concerns the raw pool does not:

* **ordering** — cells are dispatched hardest-first (by prior timings
  when available, by a bound/method heuristic otherwise) so stragglers
  start early and the pool drains evenly; idle workers then steal the
  next-hardest pending cell, which is exactly the work-stealing order
  a longest-processing-time-first schedule wants;
* **determinism** — results are assembled into the same method-major
  order :func:`repro.harness.runner.run_matrix` produces serially, so
  parallel and serial runs are interchangeable downstream;
* **memoization** — an optional :class:`ResultCache` is consulted
  before dispatch and fed after, so re-runs only pay for new cells.
"""

from __future__ import annotations

import logging
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..models.suite import Instance
from ..sat.types import Budget, SolveResult
from ..telemetry.metrics import current_metrics
from ..telemetry.trace import current_tracer
from .cache import ResultCache, cell_key
from .ipc import decode_outcome, make_cell_payload
from .pool import Task, WorkerPool

logger = logging.getLogger(__name__)

__all__ = ["BatchScheduler", "hardness_estimate"]

# Relative cost of one bound-step per method, tuned on the E1 suite;
# only the ordering matters, not the absolute values.  The unbounded
# provers run a whole base-case ladder plus a proof obligation per
# rung, so they weigh heaviest.
_METHOD_WEIGHT = {"sat-unroll": 2.0, "sat-incremental": 2.0, "jsat": 1.0,
                  "qbf": 6.0, "qbf-squaring": 6.0,
                  "k-induction": 8.0, "interpolation": 10.0,
                  "diameter": 12.0, "simulation": 0.5}


def hardness_estimate(instance: Instance, method: str,
                      timings: Mapping[Tuple[str, str], float] | None = None
                      ) -> float:
    """Predicted cost of one cell, used for hardest-first ordering.

    ``timings`` maps ``(instance.name, method)`` to seconds observed in
    a previous run (e.g. harvested from an earlier result list); cells
    without history fall back to bound × method weight.
    """
    if timings is not None:
        seen = timings.get((instance.name, method))
        if seen is not None:
            return float(seen)
    return (instance.k + 1) * _METHOD_WEIGHT.get(method, 3.0)


class BatchScheduler:
    """Run a full experiment matrix on a :class:`WorkerPool`.

    After :meth:`run` the ``stats`` attribute holds the batch summary:
    executed / cache-hit / timed-out cell counts, worker count, wall
    seconds, and summed per-cell CPU seconds.
    """

    def __init__(self, jobs: Optional[int] = None,
                 cache: ResultCache | str | None = None,
                 timings: Mapping[Tuple[str, str], float] | None = None,
                 wall_timeout_factor: float = 3.0) -> None:
        self.jobs = jobs
        if isinstance(cache, (str, bytes)) or hasattr(cache, "__fspath__"):
            cache = ResultCache(cache)
        self.cache = cache
        self.timings = timings
        self.wall_timeout_factor = wall_timeout_factor
        self.stats: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def harvest_timings(results: Sequence[Any]
                        ) -> Dict[Tuple[str, str], float]:
        """Extract a timings map from a previous run's CellResults."""
        return {(c.instance.name, c.method): c.seconds for c in results}

    # ------------------------------------------------------------------
    def run(self, instances: Sequence[Instance], methods: Sequence[str],
            budget: Budget | None = None,
            semantics: str = "exact",
            method_budgets: Dict[str, Budget] | None = None,
            reduce: str = "off",
            prover: Optional[str] = None,
            sim_tier: bool = False,
            **options) -> List:
        """Parallel equivalent of ``run_matrix`` (same result order).

        ``sim_tier`` answers pending cells with the bit-parallel
        random-simulation falsifier before any worker dispatch: a
        validated simulation witness fills the cell (worker ``"sim"``,
        its assigned method untouched, like a cache hit) so the pool
        only spins up for the cells randomness could not settle.  Off
        by default — experiment matrices exist to *measure* the solver
        methods, which a pre-solve tier would skip.

        ``reduce`` (``"auto"`` / ``"off"``) rides along in every cell
        payload — reduction happens inside the worker's session — and
        is part of the cache key, so reduced and unreduced runs never
        serve each other's cached traces.

        ``prover`` pairs every instance's falsifier cells with one
        unbounded-prover comparison lane (``"k-induction"`` /
        ``"interpolation"`` / ``"diameter"``).  Prover cells always run
        ``within`` semantics — a prover ladder cannot answer an exact-k
        query — and a conclusive proof surfaces as ``proved`` in the
        cell stats.
        """
        from ..bmc.backend import backend_class, fan_out_options
        from ..harness.runner import CellResult   # deferred: no cycle
        method_budgets = method_budgets or {}
        lanes = list(methods)
        if prover is not None:
            if not backend_class(prover).proves_unbounded:
                raise ValueError(
                    f"{prover!r} is a bounded falsifier, not a prover; "
                    f"list it in methods instead")
            if prover not in lanes:
                lanes.append(prover)
        # Same broadcast semantics as the serial run_matrix: each
        # method takes the keys its options class accepts; keys nobody
        # accepts raise before any worker is spawned.
        per_method = fan_out_options(lanes, options)

        # Method-major slot order, identical to the serial run_matrix.
        cells: List[Tuple[Instance, str, Budget | None]] = []
        for method in lanes:
            cell_budget = method_budgets.get(method, budget)
            for instance in instances:
                cells.append((instance, method, cell_budget))

        slots: List[Optional[CellResult]] = [None] * len(cells)
        keys: List[Optional[str]] = [None] * len(cells)
        pending: List[int] = []
        cache_hits = 0

        tracer = current_tracer()
        registry = current_metrics()
        telemetry = tracer.enabled or registry.enabled
        # Manual enter/exit (same pattern as race): the span brackets
        # the whole batch without reindenting the body.
        batch_span = tracer.span("batch.run", cells=len(cells),
                                 methods=",".join(lanes))
        batch_span.__enter__()

        wall_start = time.perf_counter()
        for slot, (instance, method, cell_budget) in enumerate(cells):
            cell_semantics = "within" if method == prover else semantics
            if self.cache is not None:
                key = cell_key(instance.system, instance.final, instance.k,
                               method, cell_semantics, cell_budget,
                               per_method[method], reduce=reduce)
                keys[slot] = key
                cached = self.cache.get(key)
                if cached is not None:
                    slots[slot] = self._to_cell_result(
                        instance, method, cached, worker="cache")
                    cache_hits += 1
                    tracer.instant("cache.hit", instance=instance.name,
                                   method=method, k=instance.k)
                    logger.debug("cache hit: %s/%s k=%d", instance.name,
                                 method, instance.k)
                    continue
            pending.append(slot)

        sim_answered = 0
        if sim_tier and pending:
            from ..sim import presolve
            still_pending: List[int] = []
            # One falsification attempt per (instance, semantics) pair
            # answers every method lane of that instance at once.
            attempts: Dict[Tuple[int, str], Any] = {}
            for slot in pending:
                instance, method, _cell_budget = cells[slot]
                cell_semantics = "within" if method == prover else semantics
                probe = (id(instance), cell_semantics)
                if probe not in attempts:
                    attempts[probe] = presolve(
                        instance.system, instance.final, instance.k,
                        semantics=cell_semantics)
                sim_out = attempts[probe]
                if sim_out is None or not sim_out.trace.is_valid(
                        instance.system, instance.final):
                    still_pending.append(slot)
                    continue
                outcome = {
                    "status": SolveResult.SAT.name,
                    "k": sim_out.hit_k,
                    "method": "simulation",
                    "seconds": sim_out.seconds,
                    "stats": dict(sim_out.stats,
                                  sim_presolved=True),
                    "trace": {
                        "states": [dict(s)
                                   for s in sim_out.trace.states],
                        "inputs": [dict(i)
                                   for i in sim_out.trace.inputs]},
                    "error": None,
                }
                slots[slot] = self._to_cell_result(
                    instance, method, outcome, worker="sim")
                sim_answered += 1
                tracer.instant("sim.hit", instance=instance.name,
                               method=method, k=sim_out.hit_k)
            pending = still_pending

        # Hardest first: a longest-job-first schedule minimizes the
        # makespan penalty of stragglers landing last.
        pending.sort(key=lambda slot: hardness_estimate(
            cells[slot][0], cells[slot][1], self.timings), reverse=True)

        timeouts = 0
        executed = 0
        cpu_total = 0.0
        if pending:
            from .pool import pool_context
            from .race import ensure_methods_spawnable
            ensure_methods_spawnable(lanes, pool_context())
            tasks = []
            for slot in pending:
                instance, method, cell_budget = cells[slot]
                cell_semantics = "within" if method == prover else semantics
                payload = make_cell_payload(instance.system, instance.final,
                                            instance.k, method,
                                            cell_semantics,
                                            cell_budget, per_method[method],
                                            reduce=reduce,
                                            telemetry=telemetry)
                wall_timeout = None
                if cell_budget is not None \
                        and cell_budget.max_seconds is not None:
                    wall_timeout = (cell_budget.max_seconds
                                    * self.wall_timeout_factor + 1.0)
                tasks.append(Task(slot, payload, wall_timeout))
            with WorkerPool(jobs=self.jobs) as pool:
                outcomes = pool.run(tasks)
            for slot, outcome in outcomes.items():
                instance, method, cell_budget = cells[slot]
                slots[slot] = self._to_cell_result(
                    instance, method, outcome,
                    worker=outcome.get("worker"))
                executed += 1
                cpu_total += outcome.get("cpu_seconds", 0.0)
                if telemetry:
                    self._merge_telemetry(tracer, registry, outcome)
                if outcome.get("timed_out"):
                    timeouts += 1
                elif self._cacheable(outcome, cell_budget) \
                        and keys[slot] is not None:
                    self.cache.put(keys[slot], _jsonable(outcome))
        wall = time.perf_counter() - wall_start
        batch_span.set(executed=executed, cache_hits=cache_hits)
        batch_span.__exit__(None, None, None)
        logger.info("batch: %d cells (%d executed, %d cached) in %.3fs",
                    len(cells), executed, cache_hits, wall)

        self.stats = {
            "cells": len(cells),
            "executed": executed,
            "cache_hits": cache_hits,
            "cache_misses": (len(cells) - cache_hits
                             if self.cache is not None else 0),
            "sim_hits": sim_answered,
            "timeouts": timeouts,
            "jobs": self.jobs,
            "wall_seconds": wall,
            "cpu_seconds": cpu_total,
        }
        assert all(result is not None for result in slots)
        return list(slots)

    # ------------------------------------------------------------------
    @staticmethod
    def _merge_telemetry(tracer, registry, outcome: Dict[str, Any]) -> None:
        """Fold one worker outcome's telemetry into the parent's."""
        events = outcome.get("trace_events")
        if events:
            tracer.extend(events)
            pid = outcome.get("worker_pid")
            if pid:
                tracer.name_lane(pid,
                                 f"worker {outcome.get('worker', pid)}")
        snapshot = outcome.get("metrics")
        if snapshot:
            registry.merge(snapshot)

    # ------------------------------------------------------------------
    def _cacheable(self, outcome: Dict[str, Any],
                   budget: Budget | None) -> bool:
        """Should this outcome be stored?

        Error outcomes never.  UNKNOWN under a wall-clock budget term is
        a property of that run's machine load, not of the query, so
        caching it would pin a transient answer; UNKNOWN under purely
        deterministic limits (conflicts / literals / decisions) is a
        pure function of the cache key and safe to store.
        """
        if self.cache is None or outcome.get("error"):
            return False
        if outcome["status"] == SolveResult.UNKNOWN.name \
                and budget is not None and budget.max_seconds is not None:
            return False
        return True

    # ------------------------------------------------------------------
    @staticmethod
    def _to_cell_result(instance: Instance, method: str,
                        outcome: Dict[str, Any],
                        worker: Optional[str]) -> Any:
        from ..harness.runner import CellResult   # deferred: no cycle
        decoded = decode_outcome(outcome)
        status = decoded["status"]
        correct: Optional[bool] = None
        if instance.expected is not None and \
                status is not SolveResult.UNKNOWN:
            want = SolveResult.SAT if instance.expected \
                else SolveResult.UNSAT
            correct = status is want
        stats = dict(decoded["stats"])
        if decoded["proved"]:
            stats["proved"] = True
        if worker == "cache":
            # A hit costs (essentially) nothing this run; the original
            # run's timings must not inflate this run's attribution.
            wall = 0.0
            cpu = 0.0
            stats["served_from_cache"] = True
        else:
            wall = outcome.get("wall_seconds", decoded["seconds"])
            cpu = outcome.get("cpu_seconds", 0.0)
        return CellResult(instance, method, status, wall, correct,
                          stats, cpu_seconds=cpu,
                          worker=worker)


# Per-run keys that must never be served back out of the cache: worker
# identity and the run's own telemetry are properties of the run that
# produced the entry, not of the query.  ``invariant`` is a live Expr
# — JSON cannot hold it — so cached proofs keep only the proved flag.
_EPHEMERAL_KEYS = ("worker_pid", "trace_events", "metrics", "invariant")


def _jsonable(outcome: Dict[str, Any]) -> Dict[str, Any]:
    """Strip non-JSON / per-run keys from an outcome before caching."""
    return {k: v for k, v in outcome.items()
            if k not in _EPHEMERAL_KEYS}
