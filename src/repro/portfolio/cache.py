"""On-disk result cache for (model, bound, method, budget) cells.

Repeated suite runs — sweeping budgets, re-running E1 after an
unrelated change, resuming an interrupted batch — mostly re-solve
cells whose answer cannot have changed.  The cache keys each cell by a
*semantic fingerprint* of the query: a canonical serialization of the
transition system and target formula (stable across processes and
sessions, unlike ``Expr.uid``), the bound, the method, the semantics,
the exact budget and the method options.  Any change to any of those
produces a different key, so stale hits are impossible by
construction.

Entries are one JSON file per key, written atomically (temp file +
rename), so concurrent batch runs may safely share a cache directory.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Iterable, Optional

from ..logic.expr import Expr
from ..sat.types import Budget
from ..system.model import TransitionSystem
from ..telemetry.metrics import current_metrics
from .ipc import budget_to_dict

__all__ = ["fingerprint_expr", "fingerprint_system", "cell_key",
           "ResultCache", "MemoryCache"]


def fingerprint_expr(root: Expr) -> str:
    """Canonical content hash of an expression DAG.

    Nodes are numbered in post-order (children before parents), so two
    structurally identical DAGs — even ones built in different
    processes with different ``uid`` values — hash identically.
    """
    digest = hashlib.sha256()
    index: Dict[int, int] = {}
    for i, node in enumerate(root.iter_dag()):
        index[node.uid] = i
        digest.update(
            (f"{i}:{node.op}:{node.name}:{node.value}:"
             + ",".join(str(index[c.uid]) for c in node.args) + ";"
             ).encode())
    return digest.hexdigest()


def fingerprint_system(system: TransitionSystem) -> str:
    """Content hash of a transition system (name excluded: two systems
    with identical semantics share cached results)."""
    digest = hashlib.sha256()
    digest.update(json.dumps({
        "state_vars": system.state_vars,
        "input_vars": system.input_vars,
        "init": fingerprint_expr(system.init),
        "trans": fingerprint_expr(system.trans),
    }, sort_keys=True).encode())
    return digest.hexdigest()


def cell_key(system: TransitionSystem, final: Expr, k: int, method: str,
             semantics: str = "exact", budget: Budget | None = None,
             options: Dict[str, Any] | None = None,
             reduce: str = "off") -> str:
    """The cache key of one reachability cell.

    ``reduce`` participates in the key: a reduced run's stats and
    trace provenance differ from an unreduced run's, so the two must
    never serve each other's cached outcomes.
    """
    doc = {
        "system": fingerprint_system(system),
        "final": fingerprint_expr(final),
        "k": k,
        "method": method,
        "semantics": semantics,
        "budget": budget_to_dict(budget),
        "options": sorted((options or {}).items()),
        "reduce": reduce,
    }
    return hashlib.sha256(
        json.dumps(doc, sort_keys=True).encode()).hexdigest()


class ResultCache:
    """Directory-backed store of encoded cell outcomes.

    ``get`` / ``put`` speak the plain-dict outcome format of
    :mod:`repro.portfolio.ipc`; hit/miss/store counters let callers
    (and tests) observe that cache hits really skipped solving.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key[:32] + ".json")

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the cached outcome for ``key``, or None.

        Any unreadable entry — missing, truncated, not valid JSON, not
        valid UTF-8, the wrong shape, or unreadable at the OS level —
        counts as a miss.  Concurrent writers replace entries
        atomically, but a crashed writer or a corrupted disk can leave
        anything behind; the cache must degrade to re-solving, never
        take the caller down.
        """
        try:
            with open(self._path(key)) as handle:
                entry = json.load(handle)
        except (OSError, ValueError, UnicodeDecodeError):
            # ValueError covers json.JSONDecodeError; OSError covers
            # FileNotFoundError, permission errors and torn reads.
            self.misses += 1
            current_metrics().inc("cache.misses")
            return None
        if (not isinstance(entry, dict) or "outcome" not in entry
                or entry.get("key") != key):
            # Wrong shape, or a 128-bit-prefix collision.
            self.misses += 1
            current_metrics().inc("cache.misses")
            return None
        self.hits += 1
        current_metrics().inc("cache.hits")
        return entry["outcome"]

    def put(self, key: str, outcome: Dict[str, Any]) -> None:
        """Store an outcome atomically (last writer wins)."""
        entry = {"key": key, "outcome": outcome}
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:  # pragma: no cover
                pass
            raise
        self.stores += 1
        current_metrics().inc("cache.stores")

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.directory)
                   if name.endswith(".json"))

    def clear(self) -> None:
        for name in os.listdir(self.directory):
            if name.endswith(".json"):
                os.unlink(os.path.join(self.directory, name))

    def __repr__(self) -> str:  # pragma: no cover
        return (f"ResultCache({self.directory!r}, {len(self)} entries, "
                f"{self.hits} hits / {self.misses} misses)")


class MemoryCache:
    """In-process dict with the :class:`ResultCache` interface.

    The serve daemon uses this when no ``--cache`` directory is given:
    warm-instance reuse within one daemon lifetime, nothing persisted.
    ``maxsize`` bounds residency with FIFO eviction (insertion order —
    good enough for a safety net; the entries are small).
    """

    def __init__(self, maxsize: int = 4096) -> None:
        self.maxsize = maxsize
        self._entries: Dict[str, Dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            current_metrics().inc("cache.misses")
            return None
        self.hits += 1
        current_metrics().inc("cache.hits")
        return entry

    def put(self, key: str, outcome: Dict[str, Any]) -> None:
        while len(self._entries) >= self.maxsize:
            self._entries.pop(next(iter(self._entries)))
        self._entries[key] = outcome
        self.stores += 1
        current_metrics().inc("cache.stores")

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def __repr__(self) -> str:  # pragma: no cover
        return (f"MemoryCache({len(self)} entries, "
                f"{self.hits} hits / {self.misses} misses)")
