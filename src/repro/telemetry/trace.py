"""Span tracer with Chrome trace-event export.

A :class:`Tracer` records two kinds of events into a bounded ring
buffer (oldest events are dropped first, counted in
:attr:`Tracer.dropped`):

* *spans* — ``with tracer.span("sat.solve", k=3) as sp:`` measures a
  timed region; attributes set up front or via :meth:`Span.set` land
  in the event's ``args``;
* *instants* — ``tracer.instant("cache.hit", method="jsat")`` marks a
  point in time.

Events are plain dicts in the Chrome trace-event format (``name``,
``ph``, ``ts`` in microseconds, ``pid``, ``tid``, ``dur`` for spans,
``args``), so :func:`write_chrome_trace` only has to sort and wrap
them.  Timestamps come from ``time.monotonic()``, which on Linux is
``CLOCK_MONOTONIC`` — shared by fork'd worker processes — so events
recorded in workers and replayed into the parent's tracer line up on
one timeline, one Perfetto lane per worker pid.

The module-level default is :data:`NULL_TRACER`, a
:class:`NullTracer` whose ``span``/``instant`` are no-ops returning a
shared inert context manager; instrumented code checks
``tracer.enabled`` (or just uses the null object) and pays nothing
when tracing is off.

>>> tracer = Tracer()
>>> with tracer.span("outer", k=2) as sp:
...     _ = sp.set(status="SAT")
...     tracer.instant("mark")
>>> [(e["name"], e["ph"]) for e in tracer.events()]
[('mark', 'i'), ('outer', 'X')]
>>> tracer.events()[1]["args"] == {"k": 2, "status": "SAT"}
True
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "Span", "Tracer", "NullTracer", "NULL_TRACER",
    "current_tracer", "set_tracer",
    "chrome_trace_document", "write_chrome_trace",
    "validate_chrome_trace", "validate_chrome_trace_file",
]

#: Default ring-buffer capacity.  At ~120 bytes/event this bounds a
#: runaway trace at a few MB; the drop counter makes truncation loud.
DEFAULT_CAPACITY = 65536


def _now_us() -> int:
    """Current monotonic time in integer microseconds."""
    return int(time.monotonic() * 1e6)


class Span:
    """A timed region; use as a context manager (see :class:`Tracer`).

    The complete event ("ph": "X") is recorded on exit, carrying the
    attributes passed to :meth:`Tracer.span` plus anything added via
    :meth:`set` while the span was open.
    """

    __slots__ = ("_tracer", "name", "args", "_start")

    def __init__(self, tracer: "Tracer", name: str,
                 args: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args
        self._start = 0

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes (recorded in the event's ``args``)."""
        self.args.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._start = _now_us()
        return self

    def __exit__(self, *exc: Any) -> None:
        end = _now_us()
        self._tracer._record({
            "name": self.name,
            "ph": "X",
            "ts": self._start,
            "dur": end - self._start,
            "pid": os.getpid(),
            "tid": threading.get_ident() & 0xFFFFFFFF,
            "args": self.args,
        })


class _NullSpan:
    """Shared inert span: accepts everything, records nothing."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        """Ignore attributes."""
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Process-local recording tracer over a bounded ring buffer."""

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self._buffer: deque = deque(maxlen=capacity)
        self.capacity = capacity
        #: Events discarded because the ring buffer was full.
        self.dropped = 0

    # -- recording -----------------------------------------------------
    def span(self, name: str, **attrs: Any) -> Span:
        """Open a timed span; attributes land in the event ``args``."""
        return Span(self, name, dict(attrs))

    def instant(self, name: str, **attrs: Any) -> None:
        """Record a point-in-time event."""
        self._record({
            "name": name,
            "ph": "i",
            "ts": _now_us(),
            "pid": os.getpid(),
            "tid": threading.get_ident() & 0xFFFFFFFF,
            "s": "t",
            "args": dict(attrs),
        })

    def name_lane(self, pid: int, label: str) -> None:
        """Label the Perfetto lane for *pid* (metadata event)."""
        self._record({
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": pid,
            "tid": 0,
            "args": {"name": label},
        })

    def _record(self, event: Dict[str, Any]) -> None:
        if len(self._buffer) == self.capacity:
            self.dropped += 1
        self._buffer.append(event)

    # -- draining ------------------------------------------------------
    def events(self) -> List[Dict[str, Any]]:
        """All buffered events, in recording order."""
        return list(self._buffer)

    def drain(self) -> List[Dict[str, Any]]:
        """Return and clear all buffered events (for IPC hand-off)."""
        events = list(self._buffer)
        self._buffer.clear()
        return events

    def extend(self, events: Iterable[Dict[str, Any]]) -> None:
        """Replay events drained elsewhere (e.g. a worker process)."""
        for event in events:
            self._record(event)

    def clear(self) -> None:
        """Discard all buffered events and reset the drop counter."""
        self._buffer.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._buffer)


class NullTracer:
    """Zero-overhead tracer: every operation is a no-op.

    Shares the interface of :class:`Tracer` so instrumented code never
    branches on the tracer type; ``span``/``instant`` cost one method
    call returning shared singletons.
    """

    enabled = False
    dropped = 0
    capacity = 0

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        """Return the shared inert span."""
        return _NULL_SPAN

    def instant(self, name: str, **attrs: Any) -> None:
        """Ignore the event."""

    def name_lane(self, pid: int, label: str) -> None:
        """Ignore the metadata."""

    def events(self) -> List[Dict[str, Any]]:
        """Always empty."""
        return []

    def drain(self) -> List[Dict[str, Any]]:
        """Always empty."""
        return []

    def extend(self, events: Iterable[Dict[str, Any]]) -> None:
        """Ignore replayed events."""

    def clear(self) -> None:
        """Nothing to clear."""

    def __len__(self) -> int:
        return 0


#: The shared default tracer — recording is opt-in.
NULL_TRACER = NullTracer()

_TRACER: Any = NULL_TRACER


def current_tracer() -> Any:
    """The process's active tracer (default :data:`NULL_TRACER`)."""
    return _TRACER


def set_tracer(tracer: Any) -> Any:
    """Install *tracer* as the active one; returns the previous."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer if tracer is not None else NULL_TRACER
    return previous


# ======================================================================
# Chrome trace-event export
# ======================================================================
def chrome_trace_document(
        events: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Wrap events in a Chrome trace-event JSON object.

    Events are sorted by timestamp (spans are recorded at *exit*, so
    raw buffer order is completion order, not start order); metadata
    events ("ph": "M") sort first so lane names apply from t=0.
    """
    ordered = sorted(events,
                     key=lambda e: (e.get("ph") != "M", e.get("ts", 0)))
    return {
        "traceEvents": ordered,
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(path: str,
                       events: Optional[Iterable[Dict[str, Any]]] = None,
                       ) -> int:
    """Write events (default: the active tracer's) as a Chrome trace.

    Returns the number of events written.  The file loads directly in
    Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
    """
    if events is None:
        events = current_tracer().events()
    document = chrome_trace_document(events)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, separators=(",", ":"))
    return len(document["traceEvents"])


_REQUIRED_KEYS = ("name", "ph", "ts", "pid")


def validate_chrome_trace(document: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Check a trace document's schema; returns its event list.

    Raises :class:`ValueError` on a malformed document: missing
    ``traceEvents``, an event lacking ``name``/``ph``/``ts``/``pid``,
    a complete event without ``dur``, or non-monotonic timestamps
    among non-metadata events.
    """
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError("not a Chrome trace: missing 'traceEvents'")
    events = document["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    last_ts = None
    for i, event in enumerate(events):
        for key in _REQUIRED_KEYS:
            if key not in event:
                raise ValueError(f"event {i} missing required key "
                                 f"{key!r}: {event!r}")
        if event["ph"] == "X" and "dur" not in event:
            raise ValueError(f"complete event {i} missing 'dur'")
        if event["ph"] == "M":
            continue
        ts = event["ts"]
        if last_ts is not None and ts < last_ts:
            raise ValueError(f"event {i} breaks timestamp order: "
                             f"{ts} < {last_ts}")
        last_ts = ts
    return events


def validate_chrome_trace_file(path: str) -> List[Dict[str, Any]]:
    """Load and :func:`validate_chrome_trace` a trace file."""
    with open(path, "r", encoding="utf-8") as fh:
        return validate_chrome_trace(json.load(fh))
