"""Metrics registry: named counters, gauges and histograms.

A :class:`MetricsRegistry` is a flat namespace of three instrument
kinds, all updated through cheap method calls:

* *counters* (:meth:`~MetricsRegistry.inc`) — monotonically summed
  (``sat.conflicts``, ``cache.hits``); merged across workers by
  addition;
* *gauges* (:meth:`~MetricsRegistry.gauge` /
  :meth:`~MetricsRegistry.gauge_max`) — last-or-peak values
  (``sat.db_literals``); merged by taking the max;
* *histograms* (:meth:`~MetricsRegistry.observe`) — running
  ``{count, sum, min, max}`` summaries (``sat.solve_seconds``);
  merged field-wise.

:meth:`~MetricsRegistry.snapshot` returns a plain nested dict (JSON-
and IPC-safe), :func:`diff` subtracts two snapshots so per-solve /
per-bound deltas are two dict copies, and
:meth:`~MetricsRegistry.merge` folds a worker's snapshot into the
parent registry.  The module default registry is *disabled*: every
update method returns immediately, so instrumented code pays one
attribute check when metrics are off.

>>> registry = MetricsRegistry()
>>> registry.inc("sat.conflicts", 3)
>>> before = registry.snapshot()
>>> registry.inc("sat.conflicts", 4)
>>> registry.gauge("sat.db_literals", 120)
>>> diff(before, registry.snapshot())["counters"]["sat.conflicts"]
4
>>> registry.snapshot()["gauges"]["sat.db_literals"]
120
"""

from __future__ import annotations

from typing import Any, Dict

__all__ = [
    "MetricsRegistry", "current_metrics", "set_metrics", "diff",
]

Snapshot = Dict[str, Dict[str, Any]]


class MetricsRegistry:
    """Registry of named counters, gauges and histograms."""

    def __init__(self, enabled: bool = True) -> None:
        #: When False every update method is a no-op.
        self.enabled = enabled
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Dict[str, float]] = {}

    # -- updates -------------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        """Add *amount* to the counter *name*."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge *name* to *value*."""
        if not self.enabled:
            return
        self._gauges[name] = value

    def gauge_max(self, name: str, value: float) -> None:
        """Raise the gauge *name* to *value* if larger."""
        if not self.enabled:
            return
        if value > self._gauges.get(name, float("-inf")):
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record *value* into the histogram *name*."""
        if not self.enabled:
            return
        h = self._histograms.get(name)
        if h is None:
            self._histograms[name] = {"count": 1, "sum": value,
                                      "min": value, "max": value}
        else:
            h["count"] += 1
            h["sum"] += value
            if value < h["min"]:
                h["min"] = value
            if value > h["max"]:
                h["max"] = value

    # -- reading -------------------------------------------------------
    def snapshot(self) -> Snapshot:
        """A plain-dict copy of every instrument (JSON/IPC-safe)."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {k: dict(v)
                           for k, v in self._histograms.items()},
        }

    def merge(self, snapshot: Snapshot) -> None:
        """Fold a snapshot (e.g. from a worker) into this registry.

        Counters add, gauges take the max, histograms merge
        field-wise.  Works even when the registry is disabled — the
        parent aggregates worker metrics regardless of whether its own
        instrumentation records.
        """
        for name, value in snapshot.get("counters", {}).items():
            self._counters[name] = self._counters.get(name, 0) + value
        for name, value in snapshot.get("gauges", {}).items():
            if value > self._gauges.get(name, float("-inf")):
                self._gauges[name] = value
        for name, h in snapshot.get("histograms", {}).items():
            mine = self._histograms.get(name)
            if mine is None:
                self._histograms[name] = dict(h)
            else:
                mine["count"] += h["count"]
                mine["sum"] += h["sum"]
                mine["min"] = min(mine["min"], h["min"])
                mine["max"] = max(mine["max"], h["max"])

    def clear(self) -> None:
        """Reset every instrument."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __bool__(self) -> bool:
        return bool(self._counters or self._gauges or self._histograms)


def diff(before: Snapshot, after: Snapshot) -> Snapshot:
    """Delta of two snapshots (counters/histograms subtract).

    Gauges keep their *after* value — a point-in-time reading has no
    meaningful subtraction.  Counters absent from *before* are treated
    as zero.
    """
    counters = {}
    for name, value in after.get("counters", {}).items():
        delta = value - before.get("counters", {}).get(name, 0)
        if delta:
            counters[name] = delta
    histograms = {}
    for name, h in after.get("histograms", {}).items():
        prev = before.get("histograms", {}).get(name)
        if prev is None:
            histograms[name] = dict(h)
            continue
        count = h["count"] - prev["count"]
        if count:
            histograms[name] = {"count": count,
                                "sum": h["sum"] - prev["sum"],
                                "min": h["min"], "max": h["max"]}
    return {
        "counters": counters,
        "gauges": dict(after.get("gauges", {})),
        "histograms": histograms,
    }


#: The shared default registry — recording is opt-in.
_METRICS = MetricsRegistry(enabled=False)


def current_metrics() -> MetricsRegistry:
    """The process's active registry (disabled by default)."""
    return _METRICS


def set_metrics(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install *registry* as the active one; returns the previous."""
    global _METRICS
    previous = _METRICS
    _METRICS = registry if registry is not None \
        else MetricsRegistry(enabled=False)
    return previous
