"""Unified telemetry: span tracing and a metrics registry.

The paper's contribution is empirical — E1–E8 measure formula growth,
memory residency and solve time across encodings — so the repo needs
one substrate that answers "where did the wall-clock go?" across every
layer: per-``solve()`` SAT counters, per-bound BMC spans, per-stage
reduction timings, and a merged cross-worker portfolio timeline.

Two halves, both process-local and dependency-free:

* :mod:`repro.telemetry.trace` — a :class:`Tracer` of timed *spans*
  and *instant* events over a bounded ring buffer, exported as Chrome
  trace-event JSON (open the file at https://ui.perfetto.dev).  The
  default is a zero-overhead :class:`NullTracer`, so instrumented code
  pays one attribute check when tracing is off.
* :mod:`repro.telemetry.metrics` — a :class:`MetricsRegistry` of
  named counters / gauges / histograms with cheap
  :meth:`~MetricsRegistry.snapshot` / :func:`~metrics.diff` so
  per-solve deltas cost two dict copies, and
  :meth:`~MetricsRegistry.merge` so worker snapshots aggregate into
  the parent's registry.

Workers serialize ``tracer.drain()`` + ``registry.snapshot()`` into
their IPC outcome dicts; ``race()`` and ``BatchScheduler`` replay them
into the parent tracer so one timeline shows every worker lane.  The
CLI surfaces both via ``--trace FILE.json`` / ``--metrics``; see
``docs/OBSERVABILITY.md`` for the span glossary.

>>> from repro.telemetry import Tracer, MetricsRegistry
>>> tracer = Tracer()
>>> with tracer.span("encode", k=3):
...     pass
>>> [e["name"] for e in tracer.events()]
['encode']
>>> registry = MetricsRegistry()
>>> registry.inc("sat.conflicts", 7)
>>> registry.snapshot()["counters"]["sat.conflicts"]
7
"""

from .metrics import (MetricsRegistry, current_metrics, diff,
                      set_metrics)
from .trace import (NULL_TRACER, NullTracer, Tracer, chrome_trace_document,
                    current_tracer, set_tracer, validate_chrome_trace,
                    write_chrome_trace)

__all__ = [
    "Tracer", "NullTracer", "NULL_TRACER",
    "current_tracer", "set_tracer",
    "chrome_trace_document", "write_chrome_trace",
    "validate_chrome_trace",
    "MetricsRegistry", "current_metrics", "set_metrics", "diff",
]
