"""BDD-based symbolic reachability — the classical baseline.

Implements the two image-computation strategies the paper's §2
contrasts its QBF encodings with:

* **breadth-first image iteration** — `Reach_{i+1} = Reach_i ∨
  Img(Reach_i)` until fixpoint (one TR step per iteration);
* **iterative squaring on the transition relation** — `TR_{2k}(x, y) =
  ∃z : TR_k(x, z) ∧ TR_k(z, y)`, doubling the step count per iteration
  exactly like formula (3) does symbolically.

Variable ordering interleaves current/next/aux copies of each state
bit, the standard choice for transition relations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..logic.expr import Expr
from ..system.model import TransitionSystem, primed
from .bdd import BddManager

__all__ = ["BddReachability"]


class BddReachability:
    """Symbolic reachability for a transition system via ROBDDs."""

    def __init__(self, system: TransitionSystem,
                 max_nodes: int = 2_000_000) -> None:
        self.system = system
        self.max_nodes = max_nodes
        order: List[str] = []
        for v in system.state_vars:
            order.extend((v, primed(v), f"{v}~aux"))
        order.extend(system.input_vars)
        self.manager = BddManager(order)
        self.init_bdd = self.manager.from_expr(system.init)
        trans = self.manager.from_expr(system.trans)
        # Quantify the primary inputs out of TR once: TR(x, x').
        self.trans_bdd = self.manager.exists(system.input_vars, trans)
        self._curr = list(system.state_vars)
        self._next = [primed(v) for v in system.state_vars]
        self._aux = [f"{v}~aux" for v in system.state_vars]

    # ------------------------------------------------------------------
    def _check_nodes(self) -> None:
        if self.manager.size() > self.max_nodes:
            raise MemoryError(
                f"BDD node limit exceeded ({self.manager.size()} nodes) — "
                f"the memory explosion the paper's §1 describes")

    def image(self, states: int) -> int:
        """Forward image: states reachable in one step."""
        step = self.manager.apply_and(states, self.trans_bdd)
        step = self.manager.exists(self._curr, step)
        out = self.manager.rename(step,
                                  dict(zip(self._next, self._curr)))
        self._check_nodes()
        return out

    def reachable_fixpoint(self) -> Tuple[int, int]:
        """All reachable states; returns (bdd, iterations)."""
        reached = self.init_bdd
        frontier = self.init_bdd
        iterations = 0
        while frontier != self.manager.false:
            iterations += 1
            img = self.image(frontier)
            new = self.manager.apply_and(img, self.manager.apply_not(reached))
            reached = self.manager.apply_or(reached, img)
            frontier = new
        return reached, iterations

    def layers(self, count: int) -> List[int]:
        """``layers[i]`` = BDD of states reachable in exactly i steps."""
        out = [self.init_bdd]
        for _ in range(count):
            out.append(self.image(out[-1]))
        return out

    # ------------------------------------------------------------------
    def squared_relations(self, max_power: int) -> List[int]:
        """TR_1, TR_2, TR_4, ... via iterative squaring.

        ``TR_{2k}(x, y) = ∃z: TR_k(x, z) ∧ TR_k(z, y)`` — the BDD
        analogue of formula (3); each entry relates states exactly
        2^i steps apart.
        """
        m = self.manager
        relations = [self.trans_bdd]
        for _ in range(max_power):
            tr = relations[-1]
            left = m.rename(tr, dict(zip(self._next, self._aux)))
            right = m.rename(tr, dict(zip(self._curr, self._aux)))
            composed = m.exists(self._aux, m.apply_and(left, right))
            relations.append(composed)
            self._check_nodes()
        return relations

    # ------------------------------------------------------------------
    # Queries (oracle-compatible signatures)
    # ------------------------------------------------------------------
    def reachable_in_exactly(self, predicate: Expr, k: int) -> bool:
        target = self.manager.from_expr(predicate)
        layer = self.layers(k)[k]
        return self.manager.apply_and(layer, target) != self.manager.false

    def reachable_within(self, predicate: Expr, k: int) -> bool:
        target = self.manager.from_expr(predicate)
        m = self.manager
        reached = self.init_bdd
        if m.apply_and(reached, target) != m.false:
            return True
        frontier = reached
        for _ in range(k):
            img = self.image(frontier)
            if m.apply_and(img, target) != m.false:
                return True
            frontier = m.apply_and(img, m.apply_not(reached))
            reached = m.apply_or(reached, img)
            if frontier == m.false:
                return False
        return False

    def shortest_distance(self, predicate: Expr,
                          max_depth: int = 1 << 16) -> Optional[int]:
        target = self.manager.from_expr(predicate)
        m = self.manager
        reached = self.init_bdd
        frontier = reached
        depth = 0
        while frontier != m.false and depth <= max_depth:
            if m.apply_and(frontier, target) != m.false:
                return depth
            img = self.image(frontier)
            frontier = m.apply_and(img, m.apply_not(reached))
            reached = m.apply_or(reached, img)
            depth += 1
        return None

    def count_reachable(self) -> int:
        reached, _ = self.reachable_fixpoint()
        return self.manager.count_sat(reached, self.system.state_vars)
