"""Reduced Ordered Binary Decision Diagrams (ROBDDs).

The paper's introduction positions BMC against "BDD-based techniques"
for symbolic model checking and borrows iterative squaring from
BDD-based reachability; this module provides that baseline substrate: a
classic shared-node ROBDD manager with complement-free nodes, an ite
apply cache, quantification, variable substitution and satisfying-path
enumeration — enough for the image-computation model checker in
:mod:`repro.bdd.reachability`.

Nodes are integers (indices into the manager's node table); 0 and 1 are
the terminal FALSE/TRUE.  Variables are identified by their *level* in
a fixed ordering, with a name table on the side.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..logic.expr import Expr

__all__ = ["BddManager"]

FALSE_NODE = 0
TRUE_NODE = 1


class BddManager:
    """A shared ROBDD node manager with an ite-based apply."""

    def __init__(self, var_order: Sequence[str]) -> None:
        if len(set(var_order)) != len(var_order):
            raise ValueError("duplicate variables in the ordering")
        self._order: List[str] = list(var_order)
        self._level: Dict[str, int] = {n: i for i, n in enumerate(var_order)}
        # node tables; index 0/1 reserved for terminals (level = +inf).
        self._var: List[int] = [-1, -1]          # level of node's variable
        self._low: List[int] = [0, 1]
        self._high: List[int] = [0, 1]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}

    # ------------------------------------------------------------------
    # Core node construction
    # ------------------------------------------------------------------
    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._var)
            self._var.append(level)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
        return node

    def var(self, name: str) -> int:
        """The BDD of a single variable."""
        level = self._level.get(name)
        if level is None:
            raise KeyError(f"variable {name!r} not in the ordering")
        return self._mk(level, FALSE_NODE, TRUE_NODE)

    @property
    def true(self) -> int:
        return TRUE_NODE

    @property
    def false(self) -> int:
        return FALSE_NODE

    def size(self) -> int:
        """Total nodes allocated (a memory proxy, as in the paper's
        BDD-blow-up discussion)."""
        return len(self._var)

    def level_of(self, node: int) -> int:
        return self._var[node] if node > 1 else len(self._order)

    # ------------------------------------------------------------------
    # ite / boolean operations
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """if-then-else — the universal ROBDD combinator."""
        if f == TRUE_NODE:
            return g
        if f == FALSE_NODE:
            return h
        if g == h:
            return g
        if g == TRUE_NODE and h == FALSE_NODE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        level = min(self.level_of(f), self.level_of(g), self.level_of(h))

        def cofactor(n: int, phase: bool) -> int:
            if n <= 1 or self._var[n] != level:
                return n
            return self._high[n] if phase else self._low[n]

        high = self.ite(cofactor(f, True), cofactor(g, True),
                        cofactor(h, True))
        low = self.ite(cofactor(f, False), cofactor(g, False),
                       cofactor(h, False))
        out = self._mk(level, low, high)
        self._ite_cache[key] = out
        return out

    def apply_not(self, f: int) -> int:
        return self.ite(f, FALSE_NODE, TRUE_NODE)

    def apply_and(self, f: int, g: int) -> int:
        return self.ite(f, g, FALSE_NODE)

    def apply_or(self, f: int, g: int) -> int:
        return self.ite(f, TRUE_NODE, g)

    def apply_xor(self, f: int, g: int) -> int:
        return self.ite(f, self.apply_not(g), g)

    def apply_iff(self, f: int, g: int) -> int:
        return self.ite(f, g, self.apply_not(g))

    def conjoin(self, nodes: Sequence[int]) -> int:
        out = TRUE_NODE
        for n in nodes:
            out = self.apply_and(out, n)
        return out

    def disjoin(self, nodes: Sequence[int]) -> int:
        out = FALSE_NODE
        for n in nodes:
            out = self.apply_or(out, n)
        return out

    # ------------------------------------------------------------------
    # Quantification and substitution
    # ------------------------------------------------------------------
    def exists(self, names: Sequence[str], f: int) -> int:
        """∃ names : f (existential quantification, one level at a time)."""
        levels = sorted((self._level[n] for n in names), reverse=True)
        out = f
        for level in levels:
            out = self._quantify(out, level, self.apply_or, {})
        return out

    def forall(self, names: Sequence[str], f: int) -> int:
        """∀ names : f."""
        levels = sorted((self._level[n] for n in names), reverse=True)
        out = f
        for level in levels:
            out = self._quantify(out, level, self.apply_and, {})
        return out

    def _quantify(self, f: int, level: int,
                  combine: Callable[[int, int], int],
                  memo: Dict[int, int]) -> int:
        if f <= 1 or self._var[f] > level:
            return f
        cached = memo.get(f)
        if cached is not None:
            return cached
        if self._var[f] == level:
            out = combine(self._low[f], self._high[f])
        else:
            low = self._quantify(self._low[f], level, combine, memo)
            high = self._quantify(self._high[f], level, combine, memo)
            out = self._mk(self._var[f], low, high)
        memo[f] = out
        return out

    def rename(self, f: int, mapping: Dict[str, str]) -> int:
        """Simultaneous variable renaming (handles swaps).

        Children of a node are substituted recursively and the node is
        rebuilt through ``ite`` on the renamed decision variable, which
        restores the ordering invariants whatever the mapping's shape.
        """
        level_map = {self._level[a]: self._level[b]
                     for a, b in mapping.items()}
        return self._rename_fast(f, level_map, {})

    def _rename_fast(self, f: int, level_map: Dict[int, int],
                     memo: Dict[int, int]) -> int:
        if f <= 1:
            return f
        cached = memo.get(f)
        if cached is not None:
            return cached
        level = self._var[f]
        low = self._rename_fast(self._low[f], level_map, memo)
        high = self._rename_fast(self._high[f], level_map, memo)
        new_level = level_map.get(level, level)
        # Rebuild through ite to restore ordering invariants.
        var_node = self._mk(new_level, FALSE_NODE, TRUE_NODE)
        out = self.ite(var_node, high, low)
        memo[f] = out
        return out

    def _restrict(self, f: int, level: int, value: bool,
                  memo: Dict[int, int]) -> int:
        if f <= 1 or self._var[f] > level:
            return f
        cached = memo.get(f)
        if cached is not None:
            return cached
        if self._var[f] == level:
            out = self._high[f] if value else self._low[f]
        else:
            out = self._mk(self._var[f],
                           self._restrict(self._low[f], level, value, memo),
                           self._restrict(self._high[f], level, value, memo))
        memo[f] = out
        return out

    # ------------------------------------------------------------------
    # Conversion / inspection
    # ------------------------------------------------------------------
    def from_expr(self, root: Expr) -> int:
        """Compile an expression DAG bottom-up into a BDD."""
        memo: Dict[int, int] = {}
        for node in root.iter_dag():
            if node.is_const:
                memo[node.uid] = TRUE_NODE if node.value else FALSE_NODE
            elif node.is_var:
                assert node.name is not None
                memo[node.uid] = self.var(node.name)
            else:
                kids = [memo[c.uid] for c in node.args]
                if node.op == "not":
                    memo[node.uid] = self.apply_not(kids[0])
                elif node.op == "and":
                    memo[node.uid] = self.conjoin(kids)
                elif node.op == "or":
                    memo[node.uid] = self.disjoin(kids)
                elif node.op == "xor":
                    memo[node.uid] = self.apply_xor(kids[0], kids[1])
                elif node.op == "iff":
                    memo[node.uid] = self.apply_iff(kids[0], kids[1])
                elif node.op == "ite":
                    memo[node.uid] = self.ite(kids[0], kids[1], kids[2])
                else:
                    raise ValueError(f"unknown operator {node.op!r}")
        return memo[root.uid]

    def evaluate(self, f: int, env: Dict[str, bool]) -> bool:
        node = f
        while node > 1:
            name = self._order[self._var[node]]
            node = self._high[node] if env[name] else self._low[node]
        return node == TRUE_NODE

    def count_sat(self, f: int, over: Sequence[str] | None = None) -> int:
        """Number of satisfying assignments over the given variables."""
        names = list(over) if over is not None else list(self._order)
        levels = sorted(self._level[n] for n in names)
        memo: Dict[Tuple[int, int], int] = {}

        def walk(node: int, idx: int) -> int:
            if idx == len(levels):
                if node <= 1:
                    return int(node == TRUE_NODE)
                raise ValueError("function depends on unlisted variables")
            key = (node, idx)
            if key in memo:
                return memo[key]
            level = levels[idx]
            if node <= 1 or self._var[node] > level:
                out = 2 * walk(node, idx + 1)
            elif self._var[node] == level:
                out = walk(self._low[node], idx + 1) \
                    + walk(self._high[node], idx + 1)
            else:
                raise ValueError("function depends on unlisted variables")
            memo[key] = out
            return out

        return walk(f, 0)

    def one_sat(self, f: int) -> Optional[Dict[str, bool]]:
        """One satisfying assignment (partial: only tested variables)."""
        if f == FALSE_NODE:
            return None
        out: Dict[str, bool] = {}
        node = f
        while node > 1:
            name = self._order[self._var[node]]
            if self._low[node] != FALSE_NODE:
                out[name] = False
                node = self._low[node]
            else:
                out[name] = True
                node = self._high[node]
        return out
