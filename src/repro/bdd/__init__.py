"""ROBDDs and BDD-based symbolic reachability (the classical baseline)."""

from .bdd import BddManager
from .reachability import BddReachability

__all__ = ["BddManager", "BddReachability"]
