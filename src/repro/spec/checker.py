"""Multi-property checking over one shared unrolling.

The expensive object in BMC is the unrolled transition formula
I(s_0) ∧ TR(s_0,s_1) ∧ ... ∧ TR(s_{k-1},s_k) — the paper's whole
argument.  :class:`SharedUnrolling` encodes it exactly once into one
long-lived incremental CDCL solver (one Tseitin frame per step, like
:class:`repro.bmc.incremental.IncrementalBmc`), and every *property*
rides on top as a retractable constraint:

* the property's per-bound witness formula (:mod:`repro.spec.ltl`)
  is Tseitin-encoded and attached through an assumption *group
  literal* ``g`` via the guard clause ``(-g, witness)``;
* solving under the single assumption ``g`` answers that property
  alone — the unrolling, every other property's encoding, and all
  surviving learnt clauses stay shared;
* once answered, the group is retired with the unit ``-g`` and
  physically reclaimed on the next purge — the jSAT blocking-clause
  idiom the PR 2/3 machinery established.

:class:`PropertyChecker` drives N named properties through one such
unrolling (``check_all``) or up a bound ladder (``sweep``), which is
where the multi-property speedup comes from: k transition frames are
encoded once instead of N times.

With ``reduce="auto"`` the checker additionally runs each property
through the model-reduction pipeline (:mod:`repro.reduce`) and groups
properties by their reduced cone: every cone gets its *own* shared
unrolling over its (smaller) reduced system, so the k transition
frames are not just encoded once per bound — they are encoded once
per bound *per cone*, and each cone only pays for the latches the
property can actually observe.  Witness traces are lifted back to
full-width paths over the original system before validation,
shortening, or anything downstream sees them.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..logic.cnf import CNF, VarPool
from ..logic.expr import Expr
from ..logic.tseitin import TseitinEncoder
from ..sat.kernel import make_solver
from ..sat.types import Budget, SolveResult, resolve_engine
from ..system.model import TransitionSystem
from ..system.trace import Trace, TraceError
from ..telemetry.trace import current_tracer
from .eval import holds_on_path
from .ltl import (compile_search, loop_conditions_for, loop_input_name,
                  needs_loop_closure)
from .property import (Property, Verdict, as_property, reachability_target,
                       search_plan, support)

__all__ = ["PropertyResult", "SharedUnrolling", "PropertyChecker",
           "normalize_properties", "OnPropertyBound"]

#: Observer for per-(property, bound) progress during sweeps:
#: ``on_bound(name, bound_result)`` with a
#: :class:`repro.bmc.backend.BoundResult` record.
OnPropertyBound = Callable[[str, object], None]


def _frame_name(var: str, step: int) -> str:
    return f"{var}@{step}"


def normalize_properties(properties) -> Dict[str, Property]:
    """Coerce the accepted property shapes into an ordered dict.

    Accepts a mapping ``{name: Property | Expr}`` (raw expressions are
    wrapped as :class:`~repro.spec.property.Reachable` targets), a
    single Property, or a single Expr (both named ``"target"``).
    """
    from .property import Reachable
    if properties is None:
        return {}
    if isinstance(properties, (Property, Expr)):
        properties = {"target": properties}
    out: Dict[str, Property] = {}
    for name, prop in dict(properties).items():
        if not isinstance(name, str) or not name:
            raise TypeError(f"property names must be non-empty strings, "
                            f"got {name!r}")
        if isinstance(prop, Expr):
            prop = Reachable(prop)
        out[name] = as_property(prop)
    return out


class PropertyResult:
    """Outcome of checking one named property at one bound.

    Attributes
    ----------
    name, prop:
        The property as registered.
    verdict:
        HOLDS / VIOLATED / UNKNOWN — read against the property's own
        claim (a violated Invariant has a counterexample, a holding
        Reachable has a witness).
    conclusive:
        True when the verdict is certificate-backed (a concrete path);
        False for the bounded complement ("no counterexample up to k"
        / "not reachable within k") and for UNKNOWN.
    status:
        Raw SAT / UNSAT / UNKNOWN of the underlying witness search.
    k:
        The bound answered.  In a sweep this is the bound at which the
        property resolved (the shortest witness/counterexample depth
        for total transition relations).
    trace:
        The certificate path (shortened to its first target state for
        plain reachability-style properties; the full k-path for
        general bounded-LTL witnesses).
    seconds, stats:
        Wall time and solver/encoding counters of the search.
    proved:
        True when a paired unbounded prover closed a proof: the
        verdict then holds for *all* depths, not just up to k, and
        ``conclusive`` is True without a certificate path.
    invariant:
        The inductive invariant backing a proof when the prover
        produced one (interpolation does; k-induction and diameter
        prove without an explicit invariant).  Expressed over the
        reduced cone's vocabulary when reduction was active.
    """

    def __init__(self, name: str, prop: Property, verdict: Verdict,
                 conclusive: bool, status: SolveResult, k: int,
                 trace: Optional[Trace], seconds: float,
                 stats: Dict[str, int], proved: bool = False,
                 invariant: Optional[Expr] = None) -> None:
        self.name = name
        self.prop = prop
        self.verdict = verdict
        self.conclusive = conclusive
        self.status = status
        self.k = k
        self.trace = trace
        self.seconds = seconds
        self.stats = stats
        self.proved = proved
        self.invariant = invariant

    def __repr__(self) -> str:  # pragma: no cover
        if self.proved:
            kind = "proved"
        elif self.conclusive:
            kind = "certified"
        else:
            kind = f"bounded k={self.k}"
        return (f"PropertyResult({self.name!r}, {self.verdict.name}, "
                f"{kind}, {self.seconds * 1e3:.1f} ms)")


# ----------------------------------------------------------------------
class SharedUnrolling:
    """One growing I ∧ TR^k encoding inside one incremental solver.

    Frames are only ever appended; per-query constraints attach through
    assumption groups (:meth:`activate` / :meth:`retire`), so the
    clause database carries every frame and every surviving learnt
    clause across all properties and bounds of the session.
    """

    def __init__(self, system: TransitionSystem,
                 purge_interval: int = 4,
                 solver: Optional[str] = None) -> None:
        self.system = system
        self.purge_interval = max(1, purge_interval)
        self.engine = resolve_engine(solver)
        self.pool = VarPool()
        self.cnf = CNF()
        self.encoder = TseitinEncoder(self.cnf, self.pool, False)
        self.solver = make_solver(self.engine)
        self._cursor = 0
        self._retired_since_purge = 0
        self.k = 0
        frame0 = [_frame_name(v, 0) for v in system.state_vars]
        self._frames: List[List[str]] = [frame0]
        self.encoder.assert_expr(
            system.rename_state_expr(system.init, frame0))
        for name in frame0:
            self.pool.named(name)
        self._flush()

    # ------------------------------------------------------------------
    def _flush(self) -> None:
        self.solver.ensure_vars(max(self.cnf.num_vars, self.pool.num_vars))
        new = self.cnf.clauses[self._cursor:]
        self._cursor = len(self.cnf.clauses)
        self.solver.add_clauses(new)

    def ensure_frames(self, k: int) -> None:
        """Grow the unrolling to k transition frames (append-only)."""
        tracer = current_tracer()
        while self.k < k:
            i = self.k
            with tracer.span("encode.frame", frame=i + 1):
                nxt = [_frame_name(v, i + 1)
                       for v in self.system.state_vars]
                self._frames.append(nxt)
                step = self.system.trans_between(self._frames[i], nxt,
                                                 input_suffix=f"@{i}")
                self.encoder.assert_expr(step)
                for name in nxt:
                    self.pool.named(name)
                for name in self.system.input_vars:
                    self.pool.named(_frame_name(name, i))
                self.k += 1
                self._flush()

    def frames_upto(self, k: int) -> List[List[str]]:
        """Frame variable names for steps 0..k (frames grown on demand)."""
        self.ensure_frames(k)
        return self._frames[:k + 1]

    # ------------------------------------------------------------------
    def activate(self, constraint: Expr) -> int:
        """Attach a retractable constraint; returns its group literal.

        The Tseitin definitions are asserted unconditionally (they
        never constrain the original variables); only the top literal
        is guarded, so the constraint bites exactly while its group is
        assumed.
        """
        lit = self.encoder.encode(constraint)
        self._flush()
        group = self.pool.fresh("spec-group")
        self.solver.ensure_vars(self.pool.num_vars)
        self.solver.add_clause([-group, lit])
        return group

    def retire(self, group: int) -> None:
        """Permanently disable a group (jSAT-style retirement)."""
        self.solver.add_clause([-group])
        self._retired_since_purge += 1
        if self._retired_since_purge >= self.purge_interval:
            self.solver.purge_satisfied()
            self._retired_since_purge = 0

    def solve(self, assumptions: Sequence[int],
              budget: Budget | None = None) -> SolveResult:
        """Solve the unrolling under the given assumption literals."""
        return self.solver.solve(list(assumptions), budget=budget)

    # ------------------------------------------------------------------
    def extract_trace(self, k: int) -> Trace:
        """The length-k path of the last SAT model."""
        model_value = self.solver.model_value
        states = [
            {v: bool(model_value(self.pool.named(_frame_name(v, i))))
             for v in self.system.state_vars}
            for i in range(k + 1)]
        inputs = [
            {v: bool(model_value(self.pool.named(_frame_name(v, i))))
             for v in self.system.input_vars}
            for i in range(k)]
        return Trace(states, inputs)

    def extract_loop_inputs(self) -> Dict[str, bool]:
        """Input valuation of the lasso back-edge in the last model."""
        model_value = self.solver.model_value
        return {v: bool(model_value(self.pool.named(loop_input_name(v))))
                for v in self.system.input_vars}

    def resident_literals(self) -> int:
        """Clause-database literals currently resident in the solver."""
        return self.solver.stats.db_literals

    def __repr__(self) -> str:  # pragma: no cover
        return (f"SharedUnrolling({self.system.name!r}, frames={self.k}, "
                f"clauses={self.solver.num_clauses()})")


# ----------------------------------------------------------------------
class _Cone:
    """One reduced cone and its unrollings, shared by every property
    whose reduction produced the same cone key.

    Owns the :class:`~repro.reduce.ReducedSystem` (identity when
    reduction is off or inert) plus the cone's main and auxiliary
    low-bound :class:`SharedUnrolling` instances — the two-driver
    policy of ``IncrementalBmc.check_bound``, kept per cone.
    """

    def __init__(self, reduction, purge_interval: int,
                 solver: Optional[str] = None) -> None:
        self.reduction = reduction
        self.system: TransitionSystem = reduction.system
        self.purge_interval = purge_interval
        self.engine = resolve_engine(solver)
        self._shared: Optional[SharedUnrolling] = None
        self._low: Optional[SharedUnrolling] = None

    def unrolling_for(self, k: int) -> SharedUnrolling:
        """The cone's shared unrolling, or the auxiliary low one.

        Frames beyond the queried bound are asserted unconditionally,
        which for a non-total TR could exclude witnesses whose final
        state has no successor — so a query *below* the frames already
        encoded is answered by a second, lower unrolling that itself
        only ever grows (the ``IncrementalBmc.check_bound`` policy:
        the cone stays bounded at two encodings, a monotone re-sweep
        reuses the low driver ascending until it rejoins the shared
        one, and only a strictly descending probe pays a rebuild).
        """
        if self._shared is None:
            self._shared = SharedUnrolling(self.system,
                                           self.purge_interval,
                                           solver=self.engine)
        if k < self._shared.k:
            low = self._low
            if low is None or k < low.k:
                low = SharedUnrolling(self.system, self.purge_interval,
                                      solver=self.engine)
                self._low = low
            return low
        return self._shared

    def close(self) -> None:
        self._shared = None
        self._low = None

    def __repr__(self) -> str:  # pragma: no cover
        return f"_Cone({self.system.name!r}, frames=" \
               f"{self._shared.k if self._shared else 0})"


class PropertyChecker:
    """Check many named properties of one system, one unrolling per cone.

    The checker owns one :class:`_Cone` (reduced system + shared
    unrolling) per distinct reduced cone of its properties — a single
    identity cone when reduction is off — and the unrollings persist
    across calls (frames only grow), so repeated ``check_all`` /
    ``sweep`` invocations — and every property inside one — reuse the
    same transition-frame encodings and solver state.

    ``reduce`` accepts ``"off"`` (default: solve the full system),
    ``"auto"`` (the default :func:`repro.reduce.default_pipeline`) or
    a :class:`repro.reduce.Pipeline` instance.

    ``prover`` pairs every reachability-style property with one
    unbounded prover backend (``"k-induction"`` / ``"interpolation"``
    / ``"diameter"``): when a bounded search comes back UNSAT — "no
    counterexample up to k" — the prover is asked to close the gap up
    to ``prover_max_k`` on the property's own cone, and a successful
    proof upgrades the bounded verdict to a *conclusive* one
    (``proved=True``, with the invariant validated against the cone).
    Prover state persists per property, so sweeps and repeated calls
    reuse the prover's base-case ladder and step solver.  Properties
    with no single-target reachability form (general bounded-LTL) are
    never escalated.

    ``solver`` selects the SAT engine (``"kernel"`` / ``"reference"``)
    for every unrolling the checker owns; ``None`` defers to the
    process default (:func:`repro.sat.types.resolve_engine`).

    ``sim_tier`` (default on) tries the bit-parallel random-simulation
    falsifier (:func:`repro.sim.presolve`) on each reachability-style
    query before touching the shared unrolling: a validated simulation
    witness answers the property without a single solver call.  The
    tier is SAT-only and strictly wall-bounded — turning it off
    changes timing, never verdicts.  General bounded-LTL properties
    (no single-target reachability form) always go straight to the
    solver.

    Witness traces are validated in debug mode (``__debug__``): the
    search formula must hold on the witness under the bounded path
    semantics (:func:`repro.spec.eval.holds_on_path`) over the cone it
    was found in — including the lasso back-edge when the witness
    closes a loop — and the lifted full-width path must replay against
    the *original* transition system.
    """

    def __init__(self, system: TransitionSystem,
                 properties: Optional[Mapping[str, Property]] = None,
                 purge_interval: int = 4,
                 validate: Optional[bool] = None,
                 reduce: object = "off",
                 prover: Optional[str] = None,
                 prover_max_k: int = 64,
                 sim_tier: bool = True,
                 solver: Optional[str] = None) -> None:
        from ..reduce import resolve_reduce
        if prover is not None:
            from ..bmc.backend import backend_class  # deferred: bmc imports spec
            if not backend_class(prover).proves_unbounded:
                raise ValueError(
                    f"{prover!r} is a bounded falsifier, not a prover; "
                    f"pick a backend with proves_unbounded=True "
                    f"(k-induction / interpolation / diameter)")
        self.system = system
        self.properties = normalize_properties(properties)
        self.purge_interval = purge_interval
        self.validate = __debug__ if validate is None else validate
        self.pipeline = resolve_reduce(reduce)
        self.prover = prover
        self.prover_max_k = prover_max_k
        self.sim_tier = sim_tier
        self.engine = resolve_engine(solver)
        self._cones: Dict[tuple, _Cone] = {}
        self._assignments: Dict[str, _Cone] = {}
        self._mapped: Dict[str, Property] = {}
        self._reductions_by_support: Dict[frozenset, object] = {}
        self._provers: Dict[str, object] = {}
        for name, prop in self.properties.items():
            self._check_support(name, prop)

    # ------------------------------------------------------------------
    def _check_support(self, name: str, prop: Property) -> None:
        stray = set(support(prop)) - set(self.system.state_vars)
        if stray:
            raise ValueError(
                f"property {name!r} mentions non-state variables "
                f"{sorted(stray)}; state variables of "
                f"{self.system.name!r} are {self.system.state_vars}")

    def add_property(self, name: str, prop) -> None:
        """Register (or replace) a named property on the live checker."""
        prop = normalize_properties({name: prop})[name]
        self._check_support(name, prop)
        self.properties[name] = prop
        self._assignments.pop(name, None)
        self._mapped.pop(name, None)
        self._provers.pop(name, None)

    def close(self) -> None:
        """Drop every cone's solver state."""
        for cone in self._cones.values():
            cone.close()
        for backend in self._provers.values():
            backend.close()
        self._cones.clear()
        self._assignments.clear()
        self._mapped.clear()
        self._provers.clear()

    # ------------------------------------------------------------------
    def _cone_for(self, name: str) -> _Cone:
        """The cone answering property ``name`` (computed on first use;
        properties with equal cone keys share one instance).

        Pipeline runs are memoized per property *support* set when the
        pipeline declares itself ``support_determined`` (every built-in
        transform is: the property matters only through which
        variables it observes, never its temporal structure), so
        same-support properties share one reduction computation.
        Custom pipelines containing transforms that inspect the
        property AST are re-run per property.
        """
        cone = self._assignments.get(name)
        if cone is None:
            from ..reduce import identity_reduction
            prop = self.properties[name]
            if self.pipeline is None:
                reduction = identity_reduction(self.system)
            elif self.pipeline.support_determined:
                support_key = frozenset(support(prop))
                reduction = self._reductions_by_support.get(support_key)
                if reduction is None:
                    reduction = self.pipeline.reduce(self.system, prop)
                    self._reductions_by_support[support_key] = reduction
            else:
                reduction = self.pipeline.reduce(self.system, prop)
            key = reduction.cone_key()
            cone = self._cones.get(key)
            if cone is None:
                cone = _Cone(reduction, self.purge_interval,
                             solver=self.engine)
                self._cones[key] = cone
            self._assignments[name] = cone
            self._mapped[name] = cone.reduction.map_property(prop)
        return cone

    def cone_count(self) -> int:
        """Distinct cones currently materialized (diagnostics)."""
        return len(self._cones)

    def _select(self, names: Optional[Sequence[str]]
                ) -> Dict[str, Property]:
        if names is None:
            if not self.properties:
                raise ValueError("no properties registered")
            return dict(self.properties)
        out = {}
        for name in names:
            if name not in self.properties:
                raise KeyError(
                    f"unknown property {name!r}; registered: "
                    f"{sorted(self.properties)}")
            out[name] = self.properties[name]
        return out

    # ------------------------------------------------------------------
    def check(self, name: str, k: int,
              budget: Budget | None = None) -> PropertyResult:
        """Check one registered property at bound k (within-k search)."""
        prop = self._select([name])[name]
        return self._query(name, prop, k, budget, escalate=True)

    def check_all(self, k: int, names: Optional[Sequence[str]] = None,
                  budget: Budget | None = None,
                  on_result: Callable[[PropertyResult], None] | None = None
                  ) -> Dict[str, PropertyResult]:
        """Check every (selected) property at bound k over one unrolling
        per cone.

        ``budget`` is a shared pool across the whole batch (one
        deadline, one conflict pool), mirroring the sweep contract.
        """
        from ..bmc.backend import SweepBudget  # deferred: bmc imports spec
        if k < 0:
            raise ValueError("bound k must be non-negative")
        selected = self._select(names)
        tracker = SweepBudget(budget)
        out: Dict[str, PropertyResult] = {}
        for name, prop in selected.items():
            if tracker.exhausted():
                result = PropertyResult(name, prop, Verdict.UNKNOWN,
                                        False, SolveResult.UNKNOWN, k,
                                        None, 0.0, {})
            else:
                result = self._query(name, prop, k,
                                     tracker.remaining(), escalate=True)
                tracker.charge(
                    conflicts=result.stats.get("solver_conflicts", 0),
                    decisions=result.stats.get("solver_decisions", 0),
                    propagations=result.stats.get("solver_propagations",
                                                  0))
            out[name] = result
            if on_result is not None:
                on_result(result)
        return out

    def sweep(self, max_k: int, names: Optional[Sequence[str]] = None,
              budget: Budget | None = None,
              on_bound: OnPropertyBound | None = None
              ) -> Dict[str, PropertyResult]:
        """Resolve each property at its earliest bound in 0..max_k.

        Walks bounds upward over the one shared unrolling; a property
        leaves the ladder at its first witness (earliest
        counterexample for universal claims, earliest witness for
        Reachable).  Properties never witnessed get their bounded
        verdict at ``max_k``.  ``on_bound(name, BoundResult)`` streams
        every (property, bound) record as it lands.
        """
        from ..bmc.backend import BoundResult, SweepBudget
        if max_k < 0:
            raise ValueError("max_k must be non-negative")
        selected = self._select(names)
        tracker = SweepBudget(budget)
        sweep_start = time.perf_counter()
        out: Dict[str, PropertyResult] = {}
        pending = dict(selected)
        for k in range(max_k + 1):
            if not pending:
                break
            for name in list(pending):
                prop = pending[name]
                if tracker.exhausted():
                    out[name] = PropertyResult(
                        name, prop, Verdict.UNKNOWN, False,
                        SolveResult.UNKNOWN, k, None, 0.0, {})
                    del pending[name]
                    continue
                result = self._query(name, prop, k,
                                     tracker.remaining())
                tracker.charge(
                    conflicts=result.stats.get("solver_conflicts", 0),
                    decisions=result.stats.get("solver_decisions", 0),
                    propagations=result.stats.get("solver_propagations",
                                                  0))
                if on_bound is not None:
                    on_bound(name, BoundResult(
                        k, result.status, result.trace, result.seconds,
                        time.perf_counter() - sweep_start, result.stats))
                if result.status is not SolveResult.UNSAT:
                    out[name] = result
                    del pending[name]
        for name, prop in pending.items():
            # Swept every bound without a witness: the bounded verdict,
            # upgraded to a conclusive proof when the paired prover
            # closes one within the remaining budget.
            out[name] = self._bounded_verdict(
                name, prop, max_k, tracker.remaining(),
                escalate=not tracker.exhausted())
        return {name: out[name] for name in selected}

    # ------------------------------------------------------------------
    def _prover_for(self, name: str):
        """The paired prover backend for property ``name`` (cached:
        its base-case ladder and step solver persist across calls)."""
        backend = self._provers.get(name)
        if backend is None:
            from ..bmc.backend import create_backend  # deferred: bmc imports spec
            cone = self._cone_for(name)
            target = reachability_target(self._mapped[name])
            backend = create_backend(self.prover, cone.system, target)
            self._provers[name] = backend
        return backend

    def _escalate(self, name: str, k: int, budget: Budget | None):
        """After a bounded UNSAT at ``k``: ask the paired prover to
        close an unbounded proof on the property's cone.

        Returns the prover's :class:`~repro.bmc.backend.BmcResult`
        when it proved the target unreachable (invariant validated
        against the cone when one is shipped), else None — the caller
        keeps its bounded verdict.  A prover SAT is a witness *deeper*
        than the queried bound; it never overrides the bounded answer
        here (the bounded search already settled depths <= k).
        """
        if self.prover is None:
            return None
        target = reachability_target(self._mapped[name])
        if target is None:
            return None       # general bounded LTL: no prover form
        cone = self._cone_for(name)
        result = self._prover_for(name).check(
            max(k, self.prover_max_k), semantics="within", budget=budget)
        if not (result.status is SolveResult.UNSAT and result.proved):
            return None
        if self.validate and result.invariant is not None:
            from ..bmc.provers import validate_invariant  # deferred
            if not validate_invariant(cone.system, target,
                                      result.invariant):
                return None
        return result

    def _bounded_verdict(self, name: str, prop: Property, k: int,
                         budget: Budget | None = None,
                         escalate: bool = True) -> PropertyResult:
        _, universal = search_plan(prop)
        verdict = Verdict.HOLDS if universal else Verdict.VIOLATED
        if escalate:
            proof = self._escalate(name, k, budget)
            if proof is not None:
                stats = dict(proof.stats)
                stats["prover"] = self.prover
                return PropertyResult(name, prop, verdict, True,
                                      SolveResult.UNSAT, k, None,
                                      proof.seconds, stats, proved=True,
                                      invariant=proof.invariant)
        return PropertyResult(name, prop, verdict, False,
                              SolveResult.UNSAT, k, None, 0.0, {})

    def _query(self, name: str, prop: Property, k: int,
               budget: Budget | None,
               escalate: bool = False) -> PropertyResult:
        with current_tracer().span("spec.property", property=name,
                                   k=k) as sp:
            result = self._query_body(name, prop, k, budget, escalate)
            sp.set(status=result.status.name,
                   verdict=result.verdict.name)
            if result.proved:
                sp.set(proved=True)
        return result

    def _query_body(self, name: str, prop: Property, k: int,
                    budget: Budget | None,
                    escalate: bool = False) -> PropertyResult:
        """Uninstrumented body of :meth:`_query`."""
        start = time.perf_counter()
        cone = self._cone_for(name)
        reduction = cone.reduction
        system = cone.system
        mapped = self._mapped[name]
        if self.sim_tier:
            result = self._sim_prepass(name, prop, mapped, cone, k, start)
            if result is not None:
                return result
        formula, universal = search_plan(mapped)
        unrolling = cone.unrolling_for(k)
        frames = unrolling.frames_upto(k)
        loops = None
        if needs_loop_closure(formula):
            loops = loop_conditions_for(system, frames)
        witness_expr = compile_search(formula, system, frames, loops)
        solver = unrolling.solver
        before = (solver.stats.conflicts, solver.stats.decisions,
                  solver.stats.propagations)
        group = unrolling.activate(witness_expr)
        status = unrolling.solve([group], budget=budget)
        trace = None
        if status is SolveResult.SAT:
            trace = unrolling.extract_trace(k)
            loop_inputs = (unrolling.extract_loop_inputs()
                           if loops is not None else None)
            if self.validate:
                # The bounded path semantics (lasso back-edge included)
                # hold over the cone the witness was found in ...
                self._validate_witness(name, formula, trace, loop_inputs,
                                       system)
            trace = reduction.lift(trace)
            if self.validate and not reduction.is_identity:
                # ... and the lifted full-width path must replay
                # against the original transition system.
                trace.validate(self.system)
            target = reachability_target(prop)
            if target is not None:
                trace = trace.shorten_to(target)
        unrolling.retire(group)
        stats = {
            "trans_frames": unrolling.k,
            "witness_size": witness_expr.size(),
            "loop_closure": int(loops is not None),
            "vars": solver.num_vars,
            "clauses": solver.num_clauses(),
            "db_literals": solver.stats.db_literals,
            "solver_conflicts": solver.stats.conflicts - before[0],
            "solver_decisions": solver.stats.decisions - before[1],
            "solver_propagations": solver.stats.propagations - before[2],
        }
        if not reduction.is_identity:
            stats["latches_before"] = len(self.system.state_vars)
            stats["latches_after"] = len(system.state_vars)
        proved = False
        invariant = None
        if status is SolveResult.UNKNOWN:
            verdict, conclusive = Verdict.UNKNOWN, False
        elif status is SolveResult.SAT:
            verdict = Verdict.VIOLATED if universal else Verdict.HOLDS
            conclusive = True
        else:
            verdict = Verdict.HOLDS if universal else Verdict.VIOLATED
            conclusive = False
            if escalate:
                proof = self._escalate(name, k, budget)
                if proof is not None:
                    conclusive = True
                    proved = True
                    invariant = proof.invariant
                    stats["prover"] = self.prover
                    stats["prover_seconds"] = proof.seconds
                    # Fold the prover's solver work into the shared
                    # counters so batch budgets charge for it.
                    for counter in ("solver_conflicts", "solver_decisions",
                                    "solver_propagations"):
                        stats[counter] = (stats.get(counter, 0)
                                          + proof.stats.get(counter, 0))
        seconds = time.perf_counter() - start
        return PropertyResult(name, prop, verdict, conclusive, status, k,
                              trace, seconds, stats, proved=proved,
                              invariant=invariant)

    def _sim_prepass(self, name: str, prop: Property, mapped: Property,
                     cone, k: int, start: float
                     ) -> Optional[PropertyResult]:
        """The random-simulation tier for one reachability-form query.

        Runs on the property's own reduced cone under ``within``
        semantics (the bounded search formula accepts a witness at any
        depth ≤ k, so a shallower simulation hit answers the same
        query).  Returns a conclusive SAT :class:`PropertyResult`, or
        None when the solver must run — the tier can never conclude
        UNSAT, so a miss is silent.
        """
        target = reachability_target(mapped)
        if target is None:
            return None
        from ..sim import presolve
        sim_out = presolve(cone.system, target, k, semantics="within")
        if sim_out is None:
            return None
        trace = sim_out.trace
        assert trace is not None
        trace = cone.reduction.lift(trace)
        if self.validate:
            trace.validate(self.system)
        original_target = reachability_target(prop)
        if original_target is not None:
            trace = trace.shorten_to(original_target)
        _, universal = search_plan(mapped)
        verdict = Verdict.VIOLATED if universal else Verdict.HOLDS
        stats = dict(sim_out.stats, sim_presolved=True)
        seconds = time.perf_counter() - start
        return PropertyResult(name, prop, verdict, True, SolveResult.SAT,
                              k, trace, seconds, stats)

    def _validate_witness(self, name: str, formula: Property,
                          trace: Trace,
                          loop_inputs: Optional[Dict[str, bool]],
                          system: Optional[TransitionSystem] = None
                          ) -> None:
        """Debug-mode certificate check: replay + bounded semantics.

        ``loop_inputs`` is the model's back-edge input valuation when
        loop closure was compiled, else None (the witness must then
        hold under the loop-free semantics alone).  ``system`` is the
        system the witness was found on — the reduced cone for a
        reduced query, the checker's own system otherwise.
        """
        if system is None:
            system = self.system
        trace.validate(system)
        if holds_on_path(formula, trace.states):
            return
        k = trace.length
        order = system.state_vars
        if loop_inputs is not None:
            for loopback in range(k + 1):
                if system.holds_trans(
                        trace.state_bits(k, order), loop_inputs,
                        trace.state_bits(loopback, order)) \
                        and holds_on_path(formula, trace.states,
                                          loopback=loopback):
                    return
        raise TraceError(
            f"witness for property {name!r} does not satisfy its "
            f"bounded search formula — checker bug")

    def __repr__(self) -> str:  # pragma: no cover
        return (f"PropertyChecker({self.system.name!r}, "
                f"properties={sorted(self.properties)})")
