"""Parser for spec strings — the textual form of the Property AST.

Grammar (loosest to tightest binding)::

    formula  :=  iff
    iff      :=  implies ( '<->' implies )*
    implies  :=  or ( '->' implies )?          -- right-associative
    or       :=  and ( '|' and )*
    and      :=  until ( '&' until )*
    until    :=  unary ( ('U' | 'R') until )?  -- right-associative
    unary    :=  '!' unary
              |  ('G' | 'F' | 'X') unary       -- LTL combinators
              |  'AG' unary                    -- Invariant (top level)
              |  'EF' unary                    -- Reachable (top level)
              |  '(' formula ')'
              |  identifier | 'TRUE' | 'FALSE'

    -- 'xor' binds like '&' between plain predicates.

Boolean connectives between *plain predicates* fold into a single
:class:`~repro.spec.property.Atom` at the expression level, so
``!(req0 & req1)`` parses to one atom over the hash-consed
``Expr`` — and :func:`parse_spec` round-trips ``str(property)``.

``AG`` / ``EF`` wrap predicate arguments into the top-level
:class:`Invariant` / :class:`Reachable` forms; they are rejected in
nested positions (use ``G`` / ``F`` there).

Example
-------
>>> prop = parse_spec("G !(req0 & req1)")
>>> type(prop).__name__
'Globally'
>>> parse_spec(str(prop)) == prop
True
>>> parse_spec("AG !bad") == parse_spec("AG (!bad)")
True
"""

from __future__ import annotations

import re
from typing import List, Optional

from ..logic import expr as ex
from .property import (Atom, Finally, Globally, Invariant, Next, Not,
                       Property, Reachable, Release, Until, as_property,
                       iff as mk_iff_prop, implies as mk_implies_prop)

__all__ = ["parse_spec", "SpecError"]


class SpecError(ValueError):
    """Raised on malformed spec strings."""


_TOKEN = re.compile(r"""
    (?P<skip>\s+|--[^\n]*)
  | (?P<op><->|->|[!&|()]|\bxor\b)
  | (?P<name>[A-Za-z_][A-Za-z0-9_.]*(?:-[A-Za-z0-9_.]+)*'?)
""", re.VERBOSE)
# The name class admits interior dashes (suite properties use them) but
# never a trailing one, so an unspaced "a->b" tokenizes as a, ->, b.

_TEMPORAL = {"G", "F", "X", "AG", "EF"}
_RESERVED = _TEMPORAL | {"U", "R", "TRUE", "FALSE", "xor"}


def _tokenize(text: str) -> List[str]:
    out: List[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN.match(text, pos)
        if not m:
            raise SpecError(
                f"cannot tokenize spec near {text[pos:pos + 20]!r}")
        pos = m.end()
        if m.lastgroup != "skip":
            out.append(m.group())
    return out


def _both_atoms(left: Property, right: Property) -> bool:
    return isinstance(left, Atom) and isinstance(right, Atom)


class _Parser:
    def __init__(self, tokens: List[str]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self, expected: Optional[str] = None) -> str:
        tok = self.peek()
        if tok is None:
            raise SpecError("unexpected end of spec")
        if expected is not None and tok != expected:
            raise SpecError(f"expected {expected!r}, got {tok!r}")
        self.pos += 1
        return tok

    # ------------------------------------------------------------------
    def parse(self, *, top: bool = True) -> Property:
        out = self._iff(top=top)
        if top and self.peek() is not None:
            raise SpecError(f"trailing tokens: {self.tokens[self.pos:]}")
        return out

    def _iff(self, *, top: bool = False) -> Property:
        left = self._implies(top=top)
        while self.peek() == "<->":
            self.take()
            left = mk_iff_prop(left, self._implies())
        return left

    def _implies(self, *, top: bool = False) -> Property:
        left = self._or(top=top)
        if self.peek() == "->":
            self.take()
            return mk_implies_prop(left, self._implies())
        return left

    def _or(self, *, top: bool = False) -> Property:
        left = self._and(top=top)
        while self.peek() == "|":
            self.take()
            right = self._and()
            if _both_atoms(left, right):
                left = Atom(ex.mk_or(left.expr, right.expr))
            else:
                left = left | right
        return left

    def _and(self, *, top: bool = False) -> Property:
        left = self._until(top=top)
        while self.peek() in ("&", "xor"):
            op = self.take()
            right = self._until()
            if op == "xor":
                if not _both_atoms(left, right):
                    raise SpecError(
                        "'xor' is only supported between plain "
                        "predicates, not temporal formulas")
                left = Atom(ex.mk_xor(left.expr, right.expr))
            elif _both_atoms(left, right):
                left = Atom(ex.mk_and(left.expr, right.expr))
            else:
                left = left & right
        return left

    def _until(self, *, top: bool = False) -> Property:
        left = self._unary(top=top)
        tok = self.peek()
        if tok in ("U", "R"):
            self.take()
            right = self._until()
            return Until(left, right) if tok == "U" \
                else Release(left, right)
        return left

    def _unary(self, *, top: bool = False) -> Property:
        tok = self.peek()
        if tok == "!":
            self.take()
            inner = self._unary()
            if isinstance(inner, Atom):
                return Atom(ex.mk_not(inner.expr))
            return Not(inner)
        if tok in ("G", "F", "X"):
            self.take()
            inner = self._unary()
            return {"G": Globally, "F": Finally, "X": Next}[tok](inner)
        if tok in ("AG", "EF"):
            self.take()
            if not top:
                raise SpecError(
                    f"{tok} is a top-level form and cannot be nested; "
                    f"use {'G' if tok == 'AG' else 'F'} inside formulas")
            inner = self._unary()
            if not isinstance(inner, Atom):
                raise SpecError(
                    f"{tok} takes a plain state predicate; for temporal "
                    f"bodies use {'G' if tok == 'AG' else 'F'} directly")
            return Invariant(inner) if tok == "AG" else Reachable(inner)
        if tok == "(":
            self.take()
            inner = self._iff(top=top)
            self.take(")")
            return inner
        if tok == "TRUE":
            self.take()
            return Atom(ex.TRUE)
        if tok == "FALSE":
            self.take()
            return Atom(ex.FALSE)
        if tok is None or not re.match(r"[A-Za-z_]", tok):
            raise SpecError(f"unexpected token {tok!r}")
        if tok in _RESERVED:
            raise SpecError(f"{tok!r} cannot be used as a variable name")
        self.take()
        return Atom(ex.var(tok))


def parse_spec(text: str) -> Property:
    """Parse a spec string into a :class:`Property`."""
    tokens = _tokenize(text)
    if not tokens:
        raise SpecError("empty spec string")
    return _Parser(tokens).parse()
