"""The Property AST — first-class specifications for BMC queries.

A :class:`Property` says *what* to check about a transition system,
decoupled from *how* any backend decides it.  Two top-level safety
forms mirror the queries the paper benchmarks:

* :class:`Invariant` — ``AG p``: the state predicate ``p`` holds in
  every reachable state (a universal claim; BMC searches for a
  counterexample path);
* :class:`Reachable` — ``EF p``: some state satisfying ``p`` is
  reachable (an existential claim; BMC searches for a witness path).

Beyond those, properties compose from bounded-LTL path combinators —
:class:`Globally` (G), :class:`Finally` (F), :class:`Next` (X),
:class:`Until` (U), :class:`Release` (R) — plus Boolean connectives.
A bare LTL formula used as a property is read as a universal claim
over all executions (like ``SPEC`` in SMV): checking it searches for a
path satisfying its negation.

Negation normal form and the search plan
----------------------------------------
Bounded translation (see :mod:`repro.spec.ltl`) is defined for NNF
formulas only, so :func:`nnf` pushes negations to the atoms first,
using the *infinite-trace* dualities (¬G f = F ¬f, ¬(f U g) =
¬f R ¬g, ¬X f = X ¬f, ...), which hold before any bounded
approximation is made.  :func:`search_plan` packages the whole recipe:
it returns the NNF path formula whose bounded witness decides the
property, together with the property's polarity (universal claims are
*violated* by a witness, existential claims are *established* by one).

Example
-------
>>> from repro.logic import expr as ex
>>> req0, req1 = ex.var("req0"), ex.var("req1")
>>> prop = Invariant(~(req0 & req1))
>>> str(prop)
'AG (!(req0 & req1))'
>>> formula, universal = search_plan(prop)
>>> str(formula), universal
('F ((req0 & req1))', True)
"""

from __future__ import annotations

import enum
from typing import Iterable, Optional, Tuple, Union

from ..logic import expr as ex
from ..logic.expr import Expr

__all__ = ["Property", "Atom", "Not", "And", "Or", "Next", "Finally",
           "Globally", "Until", "Release", "Invariant", "Reachable",
           "G", "F", "X", "U", "R", "implies", "iff", "as_property",
           "nnf", "search_plan", "reachability_target", "temporal_depth",
           "Verdict"]

PropertyLike = Union["Property", Expr]


class Verdict(enum.Enum):
    """Outcome of checking one property at one bound.

    ``HOLDS`` / ``VIOLATED`` speak about the property's own claim:
    a violated :class:`Invariant` has a counterexample path, a holding
    :class:`Reachable` has a witness path.  Whether the verdict is a
    bounded claim ("no counterexample up to k") or certificate-backed
    is recorded separately on the result.
    """

    HOLDS = "holds"
    VIOLATED = "violated"
    UNKNOWN = "unknown"


# ----------------------------------------------------------------------
# The AST
# ----------------------------------------------------------------------
class Property:
    """Base class of every specification node.

    Properties are immutable, structurally comparable/hashable (the
    atoms hold hash-consed :class:`~repro.logic.expr.Expr` nodes), and
    picklable, so they travel to worker processes like any other query
    object.  Boolean operators are overloaded: ``p & q``, ``p | q``,
    ``~p``, ``p >> q`` (implication).
    """

    __slots__ = ()

    def __and__(self, other: PropertyLike) -> "Property":
        return And(self, as_property(other))

    def __rand__(self, other: PropertyLike) -> "Property":
        return And(as_property(other), self)

    def __or__(self, other: PropertyLike) -> "Property":
        return Or(self, as_property(other))

    def __ror__(self, other: PropertyLike) -> "Property":
        return Or(as_property(other), self)

    def __invert__(self) -> "Property":
        if isinstance(self, Atom):
            return Atom(ex.mk_not(self.expr))
        return Not(self)

    def __rshift__(self, other: PropertyLike) -> "Property":
        return implies(self, other)

    # Structural identity --------------------------------------------
    def _key(self) -> tuple:
        raise NotImplementedError

    def __reduce__(self) -> tuple:
        # Slots + frozen __setattr__ defeat default pickling; rebuild
        # through the constructor (Expr re-interns on the other side).
        return (type(self), self._ctor_args())

    def _ctor_args(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Property):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}<{self}>"


class Atom(Property):
    """A state predicate: an :class:`Expr` over the state variables."""

    __slots__ = ("expr",)

    def __init__(self, expr: Expr) -> None:
        if not isinstance(expr, Expr):
            raise TypeError(f"Atom expects an Expr, got {type(expr).__name__}")
        object.__setattr__(self, "expr", expr)

    def __setattr__(self, *a) -> None:
        raise AttributeError("Property nodes are immutable")

    def _key(self) -> tuple:
        return ("atom", self.expr)

    def _ctor_args(self) -> tuple:
        return (self.expr,)

    def __str__(self) -> str:
        return render_expr(self.expr)


class _Unary(Property):
    __slots__ = ("arg",)
    _tag = "?"
    _symbol = "?"

    def __init__(self, arg: PropertyLike) -> None:
        object.__setattr__(self, "arg", as_property(arg))

    def __setattr__(self, *a) -> None:
        raise AttributeError("Property nodes are immutable")

    def _key(self) -> tuple:
        return (self._tag, self.arg._key())

    def _ctor_args(self) -> tuple:
        return (self.arg,)

    def __str__(self) -> str:
        return f"{self._symbol} ({self.arg})"


class _Binary(Property):
    __slots__ = ("left", "right")
    _tag = "?"
    _symbol = "?"

    def __init__(self, left: PropertyLike, right: PropertyLike) -> None:
        object.__setattr__(self, "left", as_property(left))
        object.__setattr__(self, "right", as_property(right))

    def __setattr__(self, *a) -> None:
        raise AttributeError("Property nodes are immutable")

    def _key(self) -> tuple:
        return (self._tag, self.left._key(), self.right._key())

    def _ctor_args(self) -> tuple:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"(({self.left}) {self._symbol} ({self.right}))"


class _Nary(Property):
    __slots__ = ("args",)
    _tag = "?"
    _symbol = "?"

    def __init__(self, *args: PropertyLike) -> None:
        if len(args) < 2:
            raise ValueError(f"{type(self).__name__} needs >= 2 operands")
        object.__setattr__(self, "args",
                           tuple(as_property(a) for a in args))

    def __setattr__(self, *a) -> None:
        raise AttributeError("Property nodes are immutable")

    def _key(self) -> tuple:
        return (self._tag,) + tuple(a._key() for a in self.args)

    def _ctor_args(self) -> tuple:
        return tuple(self.args)

    def __str__(self) -> str:
        joint = f" {self._symbol} "
        return "(" + joint.join(f"({a})" for a in self.args) + ")"


class Not(_Unary):
    """Negation; :func:`nnf` pushes it down to the atoms."""
    _tag = "not"
    _symbol = "!"

    def __str__(self) -> str:
        return f"!({self.arg})"


class And(_Nary):
    _tag = "and"
    _symbol = "&"


class Or(_Nary):
    _tag = "or"
    _symbol = "|"


class Next(_Unary):
    """X f — f holds in the next step."""
    _tag = "next"
    _symbol = "X"


class Finally(_Unary):
    """F f — f holds now or at some later step."""
    _tag = "finally"
    _symbol = "F"


class Globally(_Unary):
    """G f — f holds now and at every later step."""
    _tag = "globally"
    _symbol = "G"


class Until(_Binary):
    """f U g — g eventually holds, and f holds until then."""
    _tag = "until"
    _symbol = "U"


class Release(_Binary):
    """f R g — g holds up to and including the step where f first
    holds (or forever); the NNF dual of :class:`Until`."""
    _tag = "release"
    _symbol = "R"


class Invariant(Property):
    """AG p — the state predicate ``p`` holds in every reachable state.

    ``p`` must be a pure state predicate (an :class:`Expr` or an
    :class:`Atom`); for temporal obligations use a bare LTL formula
    (e.g. ``Globally(Next(...))``) instead.
    """

    __slots__ = ("expr",)

    def __init__(self, predicate: Union[Expr, Atom]) -> None:
        if isinstance(predicate, Atom):
            predicate = predicate.expr
        if not isinstance(predicate, Expr):
            raise TypeError(
                f"Invariant expects a state predicate (Expr), got "
                f"{type(predicate).__name__}; for temporal properties "
                f"use the LTL combinators directly")
        object.__setattr__(self, "expr", predicate)

    def __setattr__(self, *a) -> None:
        raise AttributeError("Property nodes are immutable")

    def _key(self) -> tuple:
        return ("invariant", self.expr)

    def _ctor_args(self) -> tuple:
        return (self.expr,)

    def __str__(self) -> str:
        return f"AG ({render_expr(self.expr)})"


class Reachable(Property):
    """EF p — some state satisfying ``p`` is reachable."""

    __slots__ = ("expr",)

    def __init__(self, predicate: Union[Expr, Atom]) -> None:
        if isinstance(predicate, Atom):
            predicate = predicate.expr
        if not isinstance(predicate, Expr):
            raise TypeError(
                f"Reachable expects a state predicate (Expr), got "
                f"{type(predicate).__name__}")
        object.__setattr__(self, "expr", predicate)

    def __setattr__(self, *a) -> None:
        raise AttributeError("Property nodes are immutable")

    def _key(self) -> tuple:
        return ("reachable", self.expr)

    def _ctor_args(self) -> tuple:
        return (self.expr,)

    def __str__(self) -> str:
        return f"EF ({render_expr(self.expr)})"


# Short aliases matching the spec-string grammar.
G = Globally
F = Finally
X = Next
U = Until
R = Release


def implies(left: PropertyLike, right: PropertyLike) -> Property:
    """``left -> right`` (desugared to ``!left | right``)."""
    left, right = as_property(left), as_property(right)
    if isinstance(left, Atom) and isinstance(right, Atom):
        return Atom(ex.mk_implies(left.expr, right.expr))
    return Or(~left, right)


def iff(left: PropertyLike, right: PropertyLike) -> Property:
    """``left <-> right`` (desugared to both implications)."""
    left, right = as_property(left), as_property(right)
    if isinstance(left, Atom) and isinstance(right, Atom):
        return Atom(ex.mk_iff(left.expr, right.expr))
    return And(implies(left, right), implies(right, left))


def as_property(obj: PropertyLike) -> Property:
    """Coerce an :class:`Expr` to an :class:`Atom`; pass properties
    through."""
    if isinstance(obj, Property):
        return obj
    if isinstance(obj, Expr):
        return Atom(obj)
    raise TypeError(f"expected a Property or Expr, got "
                    f"{type(obj).__name__}")


# ----------------------------------------------------------------------
# Rendering (the inverse of repro.spec.parse)
# ----------------------------------------------------------------------
def render_expr(e: Expr) -> str:
    """Render an :class:`Expr` in the spec-string grammar."""
    if e.op == "var":
        return e.name
    if e.op == "const":
        return "TRUE" if e.value else "FALSE"
    if e.op == "not":
        inner = e.args[0]
        body = render_expr(inner)
        if inner.op in ("var", "const"):
            return f"!{body}"
        return f"!{body}" if body.startswith("(") else f"!({body})"
    if e.op == "ite":
        c, t, f = e.args
        return render_expr(ex.mk_or(ex.mk_and(c, t),
                                    ex.mk_and(ex.mk_not(c), f)))
    joints = {"and": " & ", "or": " | ", "xor": " xor ", "iff": " <-> "}
    if e.op in joints:
        return "(" + joints[e.op].join(render_expr(a) for a in e.args) + ")"
    raise ValueError(f"cannot render expression op {e.op!r}")


# ----------------------------------------------------------------------
# Negation normal form and the search plan
# ----------------------------------------------------------------------
def nnf(prop: Property, negate: bool = False) -> Property:
    """Push negations to the atoms using infinite-trace dualities.

    The result contains no :class:`Not` nodes (negation is absorbed
    into the atoms' expressions) and no :class:`Invariant` /
    :class:`Reachable` wrappers (those are top-level forms; see
    :func:`search_plan`).
    """
    if isinstance(prop, Atom):
        return Atom(ex.mk_not(prop.expr)) if negate else prop
    if isinstance(prop, Not):
        return nnf(prop.arg, not negate)
    if isinstance(prop, And):
        parts = [nnf(a, negate) for a in prop.args]
        return Or(*parts) if negate else And(*parts)
    if isinstance(prop, Or):
        parts = [nnf(a, negate) for a in prop.args]
        return And(*parts) if negate else Or(*parts)
    if isinstance(prop, Next):
        return Next(nnf(prop.arg, negate))
    if isinstance(prop, Finally):
        return Globally(nnf(prop.arg, True)) if negate \
            else Finally(nnf(prop.arg))
    if isinstance(prop, Globally):
        return Finally(nnf(prop.arg, True)) if negate \
            else Globally(nnf(prop.arg))
    if isinstance(prop, Until):
        if negate:
            return Release(nnf(prop.left, True), nnf(prop.right, True))
        return Until(nnf(prop.left), nnf(prop.right))
    if isinstance(prop, Release):
        if negate:
            return Until(nnf(prop.left, True), nnf(prop.right, True))
        return Release(nnf(prop.left), nnf(prop.right))
    if isinstance(prop, (Invariant, Reachable)):
        raise ValueError(
            f"{type(prop).__name__} is a top-level property form and "
            f"cannot be nested inside an LTL formula; use G/F over "
            f"plain predicates instead")
    raise TypeError(f"unknown property node {type(prop).__name__}")


def search_plan(prop: Property) -> Tuple[Property, bool]:
    """The bounded-search recipe for a property.

    Returns ``(formula, universal)``: ``formula`` is the NNF path
    formula whose bounded witness decides the property, and
    ``universal`` says how to read a witness — for a universal claim
    (Invariant, or any bare LTL formula) the witness is a
    *counterexample* (property VIOLATED); for the existential
    :class:`Reachable` it *establishes* the property (HOLDS).
    """
    if isinstance(prop, Reachable):
        return Finally(Atom(prop.expr)), False
    if isinstance(prop, Invariant):
        return Finally(Atom(ex.mk_not(prop.expr))), True
    return nnf(prop, negate=True), True


def reachability_target(prop: Property) -> Optional[Expr]:
    """The bad/target state predicate, when the property reduces to
    plain reachability.

    ``Reachable(p)`` reduces to reaching ``p``; ``Invariant(p)`` (and
    ``G p`` over a predicate) reduces to reaching ``¬p``.  Properties
    whose search formula is not a plain ``F <predicate>`` return None —
    they need the bounded-LTL engine, not a reachability backend.
    """
    formula, _ = search_plan(prop)
    if isinstance(formula, Finally) and isinstance(formula.arg, Atom):
        return formula.arg.expr
    return None


def temporal_depth(prop: Property) -> int:
    """Nesting depth of temporal operators (0 for pure predicates)."""
    if isinstance(prop, Atom):
        return 0
    if isinstance(prop, (Invariant, Reachable)):
        return 1
    if isinstance(prop, Not):
        return temporal_depth(prop.arg)
    if isinstance(prop, (And, Or)):
        return max(temporal_depth(a) for a in prop.args)
    if isinstance(prop, (Next, Finally, Globally)):
        return 1 + temporal_depth(prop.arg)
    if isinstance(prop, (Until, Release)):
        return 1 + max(temporal_depth(prop.left),
                       temporal_depth(prop.right))
    raise TypeError(f"unknown property node {type(prop).__name__}")


def atoms(prop: Property) -> Iterable[Expr]:
    """Every state-predicate expression mentioned by the property."""
    if isinstance(prop, Atom):
        yield prop.expr
    elif isinstance(prop, (Invariant, Reachable)):
        yield prop.expr
    elif isinstance(prop, Not):
        yield from atoms(prop.arg)
    elif isinstance(prop, (And, Or)):
        for a in prop.args:
            yield from atoms(a)
    elif isinstance(prop, (Next, Finally, Globally)):
        yield from atoms(prop.arg)
    elif isinstance(prop, (Until, Release)):
        yield from atoms(prop.left)
        yield from atoms(prop.right)
    else:
        raise TypeError(f"unknown property node {type(prop).__name__}")


def support(prop: Property) -> frozenset:
    """Union of the variable supports of every atom."""
    out: set = set()
    for expr in atoms(prop):
        out |= expr.support()
    return frozenset(out)
