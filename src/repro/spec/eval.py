"""Explicit-state bounded-LTL evaluation — the spec layer's ground truth.

Mirrors the bounded semantics of :mod:`repro.spec.ltl` on *concrete*
paths: :func:`holds_on_path` evaluates an NNF path formula on a list
of state assignments (optionally under a (k, l)-lasso), and
:func:`check_explicit` decides a whole :class:`Property` by
enumerating every length-k path of an
:class:`~repro.system.oracle.ExplicitOracle` state graph.

The differential test suite drives the symbolic checker and this
evaluator over the same systems and asserts verdict agreement — the
same role :class:`ExplicitOracle` plays for the reachability engines.
Path enumeration is exponential in k, so this is for small systems
only (the oracle already enforces a bit-width cap).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..system.oracle import ExplicitOracle
from .property import (And, Atom, Finally, Globally, Next, Not, Or,
                       Property, Release, Until, Verdict, search_plan)

__all__ = ["holds_on_path", "witness_exists", "check_explicit",
           "enumerate_paths"]

State = Tuple[bool, ...]


def holds_on_path(formula: Property,
                  states: Sequence[Mapping[str, bool]],
                  loopback: Optional[int] = None,
                  position: int = 0) -> bool:
    """Evaluate an NNF path formula on a concrete path.

    ``states`` is the path s_0..s_k as variable assignments;
    ``loopback`` is the lasso position l (successor of s_k is s_l), or
    None for the loop-free semantics.  The recursion is literally the
    bounded translation of :mod:`repro.spec.ltl` with Boolean
    connectives evaluated instead of built.
    """
    k = len(states) - 1
    if k < 0:
        raise ValueError("empty path")

    def ev(f: Property, i: int) -> bool:
        if isinstance(f, Atom):
            return bool(f.expr.evaluate(states[i]))
        if isinstance(f, And):
            return all(ev(a, i) for a in f.args)
        if isinstance(f, Or):
            return any(ev(a, i) for a in f.args)
        if isinstance(f, Next):
            if i < k:
                return ev(f.arg, i + 1)
            return False if loopback is None else ev(f.arg, loopback)
        if isinstance(f, Finally):
            lo = i if loopback is None else min(i, loopback)
            return any(ev(f.arg, j) for j in range(lo, k + 1))
        if isinstance(f, Globally):
            if loopback is None:
                return False
            return all(ev(f.arg, j)
                       for j in range(min(i, loopback), k + 1))
        if isinstance(f, Until):
            for j in range(i, k + 1):
                if ev(f.right, j):
                    return all(ev(f.left, n) for n in range(i, j))
                if not ev(f.left, j):
                    return False
            if loopback is None:
                return False
            # Wrap around: left held on i..k; discharge inside the loop.
            for j in range(loopback, i):
                if ev(f.right, j):
                    return all(ev(f.left, n) for n in range(loopback, j))
                if not ev(f.left, j):
                    return False
            return False
        if isinstance(f, Release):
            if loopback is not None and \
                    all(ev(f.right, j)
                        for j in range(min(i, loopback), k + 1)):
                return True
            for j in range(i, k + 1):
                if not ev(f.right, j):
                    return False
                if ev(f.left, j):
                    return True
            if loopback is None:
                return False
            for j in range(loopback, i):
                if not ev(f.right, j):
                    return False
                if ev(f.left, j):
                    return True
            return False
        if isinstance(f, Not):
            raise ValueError("formula is not in NNF; run nnf() first")
        raise TypeError(f"cannot evaluate {type(f).__name__}")

    return ev(formula, position)


def enumerate_paths(oracle: ExplicitOracle, k: int) -> Iterator[List[State]]:
    """Every path of length exactly k from an initial state."""
    def walk(path: List[State]) -> Iterator[List[State]]:
        if len(path) == k + 1:
            yield path
            return
        for nxt in sorted(oracle.successors(path[-1])):
            yield from walk(path + [nxt])

    for init in sorted(oracle.initial_states):
        yield from walk([init])


def witness_exists(oracle: ExplicitOracle, formula: Property,
                   k: int) -> bool:
    """Does any length-k path (plain or lasso) witness the formula?"""
    system = oracle.system
    for path in enumerate_paths(oracle, k):
        states: List[Dict[str, bool]] = [system.state_dict(s)
                                         for s in path]
        if holds_on_path(formula, states):
            return True
        successors = oracle.successors(path[k])
        for loopback in range(k + 1):
            if path[loopback] in successors and \
                    holds_on_path(formula, states, loopback=loopback):
                return True
    return False


def check_explicit(prop: Property, oracle: ExplicitOracle,
                   k: int) -> Verdict:
    """Ground-truth verdict for a property at bound k.

    Same reading as the symbolic checker: a witness violates a
    universal claim and establishes an existential one; no witness
    within the bound yields the bounded complement.
    """
    formula, universal = search_plan(prop)
    found = witness_exists(oracle, formula, k)
    if universal:
        return Verdict.VIOLATED if found else Verdict.HOLDS
    return Verdict.HOLDS if found else Verdict.VIOLATED
