"""First-class specifications: Property objects, bounded-LTL
compilation, and multi-property checking over one shared unrolling.

Entry points
------------
* :class:`Property` AST — :class:`Invariant` / :class:`Reachable` plus
  the bounded-LTL combinators :class:`Globally` (G), :class:`Finally`
  (F), :class:`Next` (X), :class:`Until` (U), :class:`Release` (R)
  (:mod:`repro.spec.property`);
* :func:`parse_spec` — the spec-string grammar, e.g.
  ``parse_spec("G !(req0 & req1)")`` (:mod:`repro.spec.parse`);
* :class:`PropertyChecker` — N named properties, one shared unrolling,
  one incremental solver (:mod:`repro.spec.checker`) — the engine
  behind :meth:`repro.bmc.session.BmcSession.check_properties`;
* :func:`check_explicit` — explicit-state ground truth for the
  differential tests (:mod:`repro.spec.eval`).
"""

from .property import (And, Atom, F, Finally, G, Globally, Invariant, Next,
                       Not, Or, Property, R, Reachable, Release, U, Until,
                       Verdict, X, as_property, iff, implies, nnf,
                       reachability_target, search_plan)
from .ltl import compile_search, needs_loop_closure
from .parse import SpecError, parse_spec
from .eval import check_explicit, holds_on_path, witness_exists
from .checker import (OnPropertyBound, PropertyChecker, PropertyResult,
                      SharedUnrolling, normalize_properties)

__all__ = [
    # AST
    "Property", "Atom", "Not", "And", "Or", "Next", "Finally", "Globally",
    "Until", "Release", "Invariant", "Reachable",
    "G", "F", "X", "U", "R", "implies", "iff", "as_property",
    # Plans and verdicts
    "nnf", "search_plan", "reachability_target", "Verdict",
    # Compilation
    "compile_search", "needs_loop_closure",
    # Parsing
    "parse_spec", "SpecError",
    # Explicit ground truth
    "check_explicit", "holds_on_path", "witness_exists",
    # The multi-property engine
    "PropertyChecker", "PropertyResult", "SharedUnrolling",
    "normalize_properties", "OnPropertyBound",
]
