"""Bounded-LTL compilation: NNF path formulas → per-bound Boolean formulas.

This is the translation of Biere, Cimatti, Clarke & Zhu's bounded
semantics (the scheme the *Linear Encodings of Bounded LTL Model
Checking* line of work refines): a witness for an NNF path formula
``f`` on a k-step unrolling is

    ⟦f⟧_k  =  nl(f, 0)  ∨  ⋁_{l=0..k} ( L_l ∧ lp_l(f, 0) )

where ``nl`` is the loop-free translation (a finite prefix proves
nothing about G, so G compiles to false without a loop), ``L_l`` is
the back-edge constraint TR(s_k, s_l) closing a (k, l)-lasso, and
``lp_l`` is the translation under that lasso (successor of position k
is position l).  Everything is built over hash-consed
:class:`~repro.logic.expr.Expr` DAGs with per-position memoisation, so
shared subformulas are compiled once — the DAG-sharing analogue of the
linear encoding's auxiliary variables.

The loop disjuncts cost one extra TR copy each, so
:func:`needs_loop_closure` detects the (very common) formulas whose
loop witnesses are subsumed by the loop-free case — positive Boolean
combinations of atoms and ``F`` over pure predicates, exactly what
:class:`~repro.spec.property.Invariant` / ``Reachable`` compile to —
and the checker skips the loop machinery for them.

Bounded semantics caveat: the translation quantifies over paths of
length exactly k.  For total transition relations (every circuit
compiles to one) "witness within k steps" coincides with "witness on
some length-k path"; for a hand-built non-total TR a short witness
whose endpoint cannot be extended to k steps is missed at bound k —
sweep bounds upward (as the checker does) to cover every depth.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..logic import expr as ex
from ..logic.expr import Expr
from ..system.model import TransitionSystem
from .property import (And, Atom, Finally, Globally, Next, Not, Or,
                       Property, Release, Until)

__all__ = ["compile_search", "needs_loop_closure", "loop_conditions_for",
           "loop_input_name", "LOOP_INPUT_SUFFIX"]

#: Input copies driving the lasso back-edge are named ``<input>@loop``.
LOOP_INPUT_SUFFIX = "@loop"


def loop_input_name(input_var: str) -> str:
    return input_var + LOOP_INPUT_SUFFIX


def needs_loop_closure(formula: Property) -> bool:
    """Whether the loop disjuncts can add witnesses for ``formula``.

    For a positive Boolean combination of atoms and ``F`` over pure
    predicates, every loop witness is subsumed by the loop-free
    translation (both read the same positions 0..k at the top level),
    so the k+1 extra TR copies would be dead weight.  Anything with G,
    R, U, X or *nested* temporal operators can genuinely need the
    lasso.
    """
    def predicate_only(f: Property) -> bool:
        return isinstance(f, Atom)

    def top(f: Property) -> bool:
        if isinstance(f, Atom):
            return True
        if isinstance(f, (And, Or)):
            return all(top(a) for a in f.args)
        if isinstance(f, Finally):
            return predicate_only(f.arg)
        return False

    return not top(formula)


def compile_search(formula: Property, system: TransitionSystem,
                   frames: Sequence[Sequence[str]],
                   loop_conditions: Optional[Sequence[Expr]] = None) -> Expr:
    """Compile an NNF path formula over a k-step unrolling.

    Parameters
    ----------
    formula:
        NNF path formula (no :class:`Not` nodes — produced by
        :func:`repro.spec.property.search_plan`).
    frames:
        ``frames[i]`` is the list of frame variable names for step i
        (``len(frames) == k + 1``).
    loop_conditions:
        ``loop_conditions[l]`` is the back-edge constraint L_l for a
        (k, l)-lasso (None skips loop closure — only sound when
        :func:`needs_loop_closure` is False or loop witnesses are not
        wanted).

    Returns the witness formula over the frame (and loop-input)
    variables; satisfying assignments are exactly the length-k paths
    witnessing ``formula`` under the bounded semantics.
    """
    k = len(frames) - 1
    if k < 0:
        raise ValueError("need at least one frame (k >= 0)")
    stray = _atom_support(formula) - set(system.state_vars)
    if stray:
        raise ValueError(
            f"property atoms use non-state variables: {sorted(stray)}; "
            f"state variables are {system.state_vars}")

    atom_cache: Dict[Tuple[Expr, int], Expr] = {}

    def at(predicate: Expr, i: int) -> Expr:
        key = (predicate, i)
        got = atom_cache.get(key)
        if got is None:
            got = system.rename_state_expr(predicate, frames[i])
            atom_cache[key] = got
        return got

    no_loop = _translate_no_loop(k, at)
    witness = no_loop(formula, 0)
    if loop_conditions is not None:
        if len(loop_conditions) != k + 1:
            raise ValueError("need one loop condition per frame")
        disjuncts = [witness]
        for l, condition in enumerate(loop_conditions):
            looped = _translate_loop(k, l, at)
            disjuncts.append(ex.mk_and(condition, looped(formula, 0)))
        witness = ex.disjoin(disjuncts)
    return witness


def _atom_support(formula: Property) -> set:
    from .property import support
    return set(support(formula))


def _translate_no_loop(k: int,
                       at: Callable[[Expr, int], Expr]
                       ) -> Callable[[Property, int], Expr]:
    """The loop-free bounded translation nl(f, i).

    Positions run 0..k; past the end everything existential fails:
    X f at k is false, G f is false everywhere (a finite prefix never
    proves G), U must discharge by position k, R must discharge by f
    (the "g forever" disjunct needs a loop).
    """
    memo: Dict[Tuple[Property, int], Expr] = {}

    def nl(f: Property, i: int) -> Expr:
        key = (f, i)
        got = memo.get(key)
        if got is not None:
            return got
        if isinstance(f, Atom):
            out = at(f.expr, i)
        elif isinstance(f, And):
            out = ex.conjoin(nl(a, i) for a in f.args)
        elif isinstance(f, Or):
            out = ex.disjoin(nl(a, i) for a in f.args)
        elif isinstance(f, Next):
            out = nl(f.arg, i + 1) if i < k else ex.FALSE
        elif isinstance(f, Finally):
            out = nl(f.arg, i) if i == k \
                else ex.mk_or(nl(f.arg, i), nl(f, i + 1))
        elif isinstance(f, Globally):
            out = ex.FALSE
        elif isinstance(f, Until):
            if i == k:
                out = nl(f.right, i)
            else:
                out = ex.mk_or(nl(f.right, i),
                               ex.mk_and(nl(f.left, i), nl(f, i + 1)))
        elif isinstance(f, Release):
            if i == k:
                out = ex.mk_and(nl(f.left, i), nl(f.right, i))
            else:
                out = ex.mk_and(nl(f.right, i),
                                ex.mk_or(nl(f.left, i), nl(f, i + 1)))
        elif isinstance(f, Not):
            raise ValueError("formula is not in NNF (found Not); "
                             "run repro.spec.property.nnf first")
        else:
            raise TypeError(f"cannot translate {type(f).__name__}")
        memo[key] = out
        return out

    return nl


def _translate_loop(k: int, l: int,
                    at: Callable[[Expr, int], Expr]
                    ) -> Callable[[Property, int], Expr]:
    """The (k, l)-lasso translation lp_l(f, i).

    The successor of position k is position l; F/G range over every
    position the suffix from i can visit (min(i, l)..k), U/R use the
    classical two-pass closed forms (discharge ahead of i, or wrap
    around through the loop).
    """
    memo: Dict[Tuple[Property, int], Expr] = {}

    def lp(f: Property, i: int) -> Expr:
        key = (f, i)
        got = memo.get(key)
        if got is not None:
            return got
        if isinstance(f, Atom):
            out = at(f.expr, i)
        elif isinstance(f, And):
            out = ex.conjoin(lp(a, i) for a in f.args)
        elif isinstance(f, Or):
            out = ex.disjoin(lp(a, i) for a in f.args)
        elif isinstance(f, Next):
            out = lp(f.arg, i + 1 if i < k else l)
        elif isinstance(f, Finally):
            out = ex.disjoin(lp(f.arg, j)
                             for j in range(min(i, l), k + 1))
        elif isinstance(f, Globally):
            out = ex.conjoin(lp(f.arg, j)
                             for j in range(min(i, l), k + 1))
        elif isinstance(f, Until):
            ahead = [
                ex.conjoin([lp(f.right, j)]
                           + [lp(f.left, n) for n in range(i, j)])
                for j in range(i, k + 1)]
            wrapped = [
                ex.conjoin([lp(f.right, j)]
                           + [lp(f.left, n) for n in range(i, k + 1)]
                           + [lp(f.left, n) for n in range(l, j)])
                for j in range(l, i)]
            out = ex.disjoin(ahead + wrapped)
        elif isinstance(f, Release):
            forever = ex.conjoin(lp(f.right, j)
                                 for j in range(min(i, l), k + 1))
            ahead = [
                ex.conjoin([lp(f.left, j)]
                           + [lp(f.right, n) for n in range(i, j + 1)])
                for j in range(i, k + 1)]
            wrapped = [
                ex.conjoin([lp(f.left, j)]
                           + [lp(f.right, n) for n in range(i, k + 1)]
                           + [lp(f.right, n) for n in range(l, j + 1)])
                for j in range(l, i)]
            out = ex.disjoin([forever] + ahead + wrapped)
        elif isinstance(f, Not):
            raise ValueError("formula is not in NNF (found Not); "
                             "run repro.spec.property.nnf first")
        else:
            raise TypeError(f"cannot translate {type(f).__name__}")
        memo[key] = out
        return out

    return lp


def loop_conditions_for(system: TransitionSystem,
                        frames: Sequence[Sequence[str]]) -> List[Expr]:
    """The back-edge constraints L_l = TR(s_k, x@loop, s_l), l = 0..k.

    One shared ``@loop`` input copy drives the back edge: the witness
    formula is a disjunction over l, so a single satisfying lasso only
    ever needs one back-edge input valuation.
    """
    k = len(frames) - 1
    return [system.trans_between(frames[k], frames[l],
                                 input_suffix=LOOP_INPUT_SUFFIX)
            for l in range(k + 1)]
