"""Experiment harness: budgeted runner, E1-E8 experiments, reporting."""

from .experiments import (PAPER_E1, run_e1, run_e2, run_e3, run_e4, run_e5,
                          run_e6, run_e7, run_e8)
from .report import (format_growth, format_per_family,
                     format_property_results, format_solved_counts,
                     format_sweep, format_table, format_worker_attribution)
from .runner import (CellResult, PropertyCellResult, default_budget,
                     run_cell, run_matrix, run_property_cell,
                     run_property_matrix, run_sweep_cell, solved_counts,
                     verdict_counts)

__all__ = [
    "run_e1", "run_e2", "run_e3", "run_e4", "run_e5", "run_e6", "run_e7",
    "run_e8",
    "PAPER_E1",
    "CellResult", "run_cell", "run_sweep_cell", "run_matrix",
    "PropertyCellResult", "run_property_cell", "run_property_matrix",
    "solved_counts", "verdict_counts",
    "default_budget",
    "format_table", "format_solved_counts", "format_per_family",
    "format_growth", "format_worker_attribution", "format_sweep",
    "format_property_results",
]
