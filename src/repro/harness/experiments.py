"""Experiment definitions E1–E8 (see DESIGN.md §4).

Each ``run_e*`` function regenerates one evaluation artifact of the
paper and returns both the raw data and a formatted report.  The
benchmark suite (benchmarks/bench_e*.py) calls these with scaled-down
budgets; EXPERIMENTS.md records full-budget outputs.  The set here
matches the CLI (``repro experiment e1 .. e8``) and the benchmark
files one-for-one.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..bmc.metrics import growth_table
from ..bmc.session import BmcSession
from ..logic import expr as ex
from ..models import counter, lfsr, mixer, shift_register
from ..models.suite import Instance, build_suite
from ..sat.types import Budget, SolveResult
from .report import format_growth, format_per_family, format_solved_counts
from .runner import CellResult, default_budget, run_matrix, solved_counts

__all__ = ["run_e1", "run_e2", "run_e3", "run_e4", "run_e5", "run_e6",
           "run_e7", "run_e8", "PAPER_E1"]

# The numbers reported in §3 of the paper (for the report footer).
PAPER_E1 = {"sat-unroll": 184, "jsat": 143, "qbf (general)": 3,
            "total": 234}


# ----------------------------------------------------------------------
def run_e1(instances: Sequence[Instance] | None = None,
           budget_scale: float = 1.0,
           qbf_budget_scale: float = 0.2
           ) -> Tuple[List[CellResult], str]:
    """E1 — the headline solved-counts comparison.

    SAT on formula (1), jSAT on the formula (2) semantics, and the
    general-purpose QDPLL on formula (2), all under the same
    per-instance budget (QBF gets a reduced wall-clock cap purely to
    keep the run short; it exhausts any budget on all but trivial
    instances, exactly as the paper found).
    """
    if instances is None:
        instances = build_suite()
    budget = default_budget(budget_scale)
    qbf_budget = Budget(
        max_conflicts=budget.max_conflicts,
        max_seconds=(budget.max_seconds or 5.0) * qbf_budget_scale,
        max_literals=budget.max_literals,
        max_decisions=50_000)
    results = run_matrix(instances, ["sat-unroll", "jsat", "qbf"],
                         budget=budget,
                         method_budgets={"qbf": qbf_budget})
    counts = solved_counts(results)
    report = format_solved_counts(counts, PAPER_E1)
    return results, report


# ----------------------------------------------------------------------
def run_e2(bounds: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
           width: int = 10, rounds: int = 4) -> Tuple[Dict, str]:
    """E2 — formula growth per encoding as the bound increases.

    Uses the mixer design, whose transition relation is much larger
    than its state vector (the regime the paper targets: "the
    transition relation ... is usually the biggest formula"); reports
    literal counts (see DESIGN.md for the expected slopes).
    """
    system, final, _ = mixer.make(width, rounds)
    table = growth_table(system, final, list(bounds))
    report = format_growth(table, metric="literals")
    return table, report


# ----------------------------------------------------------------------
def run_e3(ring_length: int = 12) -> Tuple[Dict[str, int], str]:
    """E3 — iterations to find a target: linear stepping vs squaring.

    The token-ring target at position L-1 needs bound L-1; linear
    stepping performs L iterations (k = 0..L-1), the squaring schedule
    ⌈log2⌉ + 2.
    """
    system, final, depth = shift_register.make(ring_length)
    assert depth is not None
    with BmcSession(system, properties={"target": final},
                    method="sat-unroll") as session:
        hit_lin, hist_lin = session.find_reachable(depth + 2,
                                                   strategy="linear")
        hit_sq, hist_sq = session.find_reachable(depth + 2,
                                                 strategy="squaring")
    data = {
        "depth": depth,
        "linear_iterations": len(hist_lin),
        "squaring_iterations": len(hist_sq),
        "linear_found": hit_lin is not None,
        "squaring_found": hit_sq is not None,
    }
    from .report import format_table
    report = format_table(
        ["strategy", "iterations", "found at k"],
        [["linear (exact k = 0,1,2,...)", len(hist_lin),
          hit_lin.k if hit_lin else "-"],
         ["squaring (within k = 1,2,4,...)", len(hist_sq),
          hit_sq.k if hit_sq else "-"]])
    return data, report


# ----------------------------------------------------------------------
def run_e4(instances: Sequence[Instance] | None = None,
           budget_scale: float = 1.0) -> Tuple[List[CellResult], str]:
    """E4 — jSAT vs the base SAT solver, per family."""
    if instances is None:
        instances = build_suite()
    budget = default_budget(budget_scale)
    results = run_matrix(instances, ["sat-unroll", "jsat"], budget=budget)
    return results, format_per_family(results)


# ----------------------------------------------------------------------
def run_e5(max_k: int = 6, budget_seconds: float = 2.0
           ) -> Tuple[List[Dict], str]:
    """E5 — general-purpose QBF solvers on forms (2) and (3).

    Small LFSR instances, increasing bound; QDPLL falls over almost
    immediately while jSAT (same semantics) stays comfortable — the
    paper's "3 of 234" observation in miniature.
    """
    rows: List[Dict] = []
    system, final, depth = lfsr.make(5, 11)
    budget = Budget(max_seconds=budget_seconds, max_decisions=200_000)
    for k in range(1, max_k + 1):
        row: Dict = {"k": k}
        # A fresh session per row: the per-k timing comparison assumes
        # cold solvers, so jsat must not carry its no-good cache (or a
        # warm clause database) between rows while qbf starts cold.
        with BmcSession(system,
                        properties={"target": final}) as session:
            for method in ("qbf", "jsat"):
                result = session.check(k, method=method, budget=budget)
                row[method] = result.status.name
                row[f"{method}_s"] = round(result.seconds, 3)
            if (k & (k - 1)) == 0:
                result = session.check(k, method="qbf-squaring",
                                       budget=budget)
                row["qbf-squaring"] = result.status.name
        rows.append(row)
    from .report import format_table
    report = format_table(
        ["k", "qdpll(2)", "time", "jsat", "time", "qdpll(3)"],
        [[r["k"], r["qbf"], r["qbf_s"], r["jsat"], r["jsat_s"],
          r.get("qbf-squaring", "-")] for r in rows])
    return rows, report


# ----------------------------------------------------------------------
def run_e6(width: int = 8, bounds: Sequence[int] = (4, 8, 16, 32)
           ) -> Tuple[List[Dict], str]:
    """E6 — peak resident formula during solving: unrolling vs jSAT.

    Measures the solver clause database (literal occurrences), i.e. the
    quantity the paper's 1 GB limit bounds.
    """
    system, final, depth = counter.make(width, (1 << width) - 1)
    target = (1 << width) - 1
    rows: List[Dict] = []
    for k in bounds:
        final_k = ex.var(f"c{width - 1}") if k < target else final
        row: Dict = {"k": k}
        # A fresh session per row: the query target changes with k, and
        # the peak-memory numbers must not share solver state.
        with BmcSession(system,
                        properties={"target": final_k}) as session:
            unroll = session.check(k, method="sat-unroll")
            row["unroll_peak"] = unroll.stats.get(
                "solver_peak_db_literals", 0)
            row["unroll_status"] = unroll.status.name
            jsat = session.check(k, method="jsat")
            row["jsat_peak"] = jsat.stats.get("peak_db_literals", 0)
            row["jsat_base"] = jsat.stats.get("base_literals", 0)
            row["jsat_status"] = jsat.status.name
        rows.append(row)
    from .report import format_table
    report = format_table(
        ["k", "unroll peak lits", "jsat peak lits", "jsat TR-only lits"],
        [[r["k"], r["unroll_peak"], r["jsat_peak"], r["jsat_base"]]
         for r in rows])
    return rows, report


# ----------------------------------------------------------------------
def run_e7(instances: Sequence[Instance] | None = None,
           budget_scale: float = 0.5) -> Tuple[Dict[str, Dict], str]:
    """E7 — jSAT ablations: no-good cache and F-pruning on/off."""
    if instances is None:
        instances = [i for i in build_suite() if i.k <= 12][:60]
    budget = default_budget(budget_scale)
    variants = {
        "jsat (full)": {"use_cache": True, "f_pruning": True},
        "jsat -cache": {"use_cache": False, "f_pruning": True},
        "jsat -Fprune": {"use_cache": True, "f_pruning": False},
        "jsat -both": {"use_cache": False, "f_pruning": False},
    }
    summary: Dict[str, Dict] = {}
    for label, options in variants.items():
        results = run_matrix(instances, ["jsat"], budget=budget, **options)
        solved = sum(1 for c in results if c.solved)
        queries = sum(c.stats.get("queries", 0) for c in results)
        seconds = sum(c.seconds for c in results)
        summary[label] = {"solved": solved, "total": len(results),
                          "queries": queries,
                          "seconds": round(seconds, 2)}
    from .report import format_table
    report = format_table(
        ["variant", "solved", "total", "queries", "seconds"],
        [[label, row["solved"], row["total"], row["queries"],
          row["seconds"]] for label, row in summary.items()])
    return summary, report


# ----------------------------------------------------------------------
def run_e8(friendly_width: int = 8, dense_width: int = 12,
           dense_rounds: int = 4, bdd_node_budget: int = 30_000,
           jsat_bound: int = 24) -> Tuple[Dict, str]:
    """E8 — classical baselines' memory behaviour (paper §1).

    BDD reachability handles a friendly design but blows through a node
    budget on a dense one, while jSAT answers a deep query on the same
    dense design within a small constant clause database.  This is the
    experiment behind ``benchmarks/bench_e8_bdd_baseline.py``, exposed
    here so the CLI's experiment set matches the benchmark set.
    """
    from ..bdd import BddReachability
    from ..models import mixer

    data: Dict = {}
    friendly, _, _ = counter.make(friendly_width, 1)
    reach = BddReachability(friendly, max_nodes=500_000)
    data["friendly_states"] = reach.count_reachable()
    data["friendly_nodes"] = reach.manager.size()

    dense, _, _ = mixer.make(dense_width, dense_rounds)
    blown = BddReachability(dense, max_nodes=bdd_node_budget)
    try:
        blown.reachable_fixpoint()
        data["dense_blowup"] = False
    except MemoryError:
        data["dense_blowup"] = True
    data["dense_nodes"] = blown.manager.size()

    target = ex.var(f"x{dense_width - 1}")
    with BmcSession(dense, properties={"target": target}) as session:
        jsat = session.check(jsat_bound, method="jsat")
    data["jsat_status"] = jsat.status.name
    data["jsat_peak_literals"] = jsat.stats.get("peak_db_literals", 0)

    from .report import format_table
    report = format_table(
        ["baseline", "design", "outcome"],
        [["BDD", f"counter({friendly_width})",
          f"{data['friendly_states']} states, "
          f"{data['friendly_nodes']} nodes"],
         ["BDD", f"mixer({dense_width},{dense_rounds})",
          "node budget exceeded" if data["dense_blowup"]
          else f"{data['dense_nodes']} nodes"],
         ["jsat", f"mixer({dense_width},{dense_rounds}) k={jsat_bound}",
          f"{data['jsat_status']}, peak "
          f"{data['jsat_peak_literals']} literals"]])
    return data, report
