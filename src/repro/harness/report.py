"""ASCII reporting for the experiments.

Formats the aggregates produced by :mod:`repro.harness.runner` into the
tables recorded in EXPERIMENTS.md — most importantly the E1 headline
table mirroring the paper's "143 of 234 / 184 / 3" solved counts.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from ..bmc.incremental import SweepResult
from .runner import CellResult, PropertyCellResult

__all__ = ["format_table", "format_solved_counts", "format_per_family",
           "format_growth", "format_worker_attribution", "format_sweep",
           "format_property_results", "format_reduction",
           "format_metrics", "format_serve_stats"]


def format_metrics(snapshot: Mapping[str, Mapping[str, object]]) -> str:
    """Render a telemetry metrics snapshot as a fixed-width table.

    ``snapshot`` is the nested dict produced by
    :meth:`repro.telemetry.MetricsRegistry.snapshot` (counters sum
    across workers, gauges are peak values, histograms show
    count/sum/min/max).

    >>> from repro.telemetry import MetricsRegistry
    >>> m = MetricsRegistry()
    >>> m.inc("sat.conflicts", 5)
    >>> print(format_metrics(m.snapshot()))
    metric         kind     value
    -------------  -------  -----
    sat.conflicts  counter  5
    """
    rows: List[List[object]] = []
    for name in sorted(snapshot.get("counters", {})):
        rows.append([name, "counter", snapshot["counters"][name]])
    for name in sorted(snapshot.get("gauges", {})):
        rows.append([name, "gauge", snapshot["gauges"][name]])
    for name in sorted(snapshot.get("histograms", {})):
        h = snapshot["histograms"][name]
        rows.append([name, "histogram",
                     (f"count={h['count']} sum={h['sum']:.6g} "
                      f"min={h['min']:.6g} max={h['max']:.6g}")])
    return format_table(["metric", "kind", "value"], rows)


def format_reduction(rows: Iterable[Mapping[str, object]]) -> str:
    """Per-property before→after table for the ``repro reduce`` report.

    Each row is a dict with ``property`` plus the counters of
    :meth:`repro.reduce.ReducedSystem.summary` (latches / inputs /
    TR DAG nodes before and after, and how many latches each transform
    removed).
    """
    headers = ["property", "latches", "inputs", "trans-nodes",
               "fixed", "merged", "freed"]
    table: List[List[object]] = []
    for row in rows:
        def arrow(before: object, after: object) -> str:
            return f"{before}" if before == after else f"{before}->{after}"
        table.append([
            row["property"],
            arrow(row["latches_before"], row["latches_after"]),
            arrow(row["inputs_before"], row["inputs_after"]),
            arrow(row["trans_nodes_before"], row["trans_nodes_after"]),
            row["fixed"], row["merged"], row["freed"],
        ])
    return format_table(headers, table)


def format_property_results(cells: Iterable[PropertyCellResult]) -> str:
    """Per-(instance, property) verdict table for a property matrix.

    The ``evidence`` column distinguishes the three conclusiveness
    levels: ``proved`` (an unbounded prover closed the proof),
    ``certificate`` (a concrete witness path), and
    ``bounded k=<k>`` (nothing found up to k — inconclusive).
    """
    headers = ["instance", "property", "verdict", "evidence", "k", "ms"]
    rows: List[List[object]] = []
    for cell in cells:
        result = cell.result
        if getattr(result, "proved", False):
            evidence = "proved"
        elif result.conclusive:
            evidence = "certificate"
        else:
            evidence = f"bounded k={result.k}"
        rows.append([cell.instance.name, result.name,
                     result.verdict.value, evidence, result.k,
                     f"{cell.seconds * 1e3:.1f}"])
    return format_table(headers, rows)


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Plain fixed-width table."""
    rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def format_solved_counts(counts: Mapping[str, Mapping[str, int]],
                         paper_row: Mapping[str, int] | None = None) -> str:
    """The E1 headline table; optionally appends the paper's numbers."""
    headers = ["method", "solved", "total", "sat", "unsat", "unknown",
               "wrong"]
    rows: List[List[object]] = []
    for method, row in counts.items():
        rows.append([method, row["solved"], row["total"], row["sat"],
                     row["unsat"], row["unknown"], row["wrong"]])
    table = format_table(headers, rows)
    if paper_row:
        extra = ", ".join(f"{k}={v}" for k, v in paper_row.items())
        table += f"\n(paper, 234 instances, 300 s / 1 GB: {extra})"
    return table


def format_per_family(results: Iterable[CellResult]) -> str:
    """Per-(family, method) solved counts — the E4 table."""
    agg: Dict[tuple, Dict[str, float]] = {}
    methods: List[str] = []
    families: List[str] = []
    for cell in results:
        key = (cell.instance.family, cell.method)
        row = agg.setdefault(key, {"solved": 0, "total": 0, "time": 0.0})
        row["total"] += 1
        if cell.solved:
            row["solved"] += 1
        row["time"] += cell.seconds
        if cell.method not in methods:
            methods.append(cell.method)
        if cell.instance.family not in families:
            families.append(cell.instance.family)
    headers = ["family"] + [f"{m} (solved/total, s)" for m in methods]
    rows = []
    for family in families:
        row: List[object] = [family]
        for method in methods:
            cell = agg.get((family, method))
            if cell is None:
                row.append("-")
            else:
                row.append(f"{int(cell['solved'])}/{int(cell['total'])} "
                           f"{cell['time']:.2f}")
        rows.append(row)
    return format_table(headers, rows)


def format_worker_attribution(results: Iterable[CellResult]) -> str:
    """Per-worker cell counts and wall-vs-CPU totals.

    In a parallel batch each cell records which pool worker solved it
    and how much CPU time it burned there; this table makes the
    portfolio speedup measurable — summed CPU stays roughly constant
    while the batch's wall clock shrinks with the worker count.
    Cache hits appear as the pseudo-worker ``cache`` with zero CPU.
    """
    agg: Dict[str, Dict[str, float]] = {}
    for cell in results:
        worker = cell.worker or "serial"
        row = agg.setdefault(worker, {"cells": 0, "wall": 0.0, "cpu": 0.0})
        row["cells"] += 1
        row["wall"] += cell.seconds
        row["cpu"] += cell.cpu_seconds
    headers = ["worker", "cells", "wall s", "cpu s"]
    rows = [[worker, int(row["cells"]), f"{row['wall']:.2f}",
             f"{row['cpu']:.2f}"]
            for worker, row in sorted(agg.items())]
    totals = {k: sum(row[k] for row in agg.values())
              for k in ("cells", "wall", "cpu")}
    rows.append(["(total)", int(totals["cells"]), f"{totals['wall']:.2f}",
                 f"{totals['cpu']:.2f}"])
    return format_table(headers, rows)


def format_sweep(result: SweepResult) -> str:
    """Per-bound table of one sweep plus its shortest-cex footer.

    For the incremental driver the reuse columns show what the single
    live solver carries from bound to bound; for per-bound methods they
    are absent (``-``).
    """
    headers = ["k", "status", "ms", "cum ms", "clauses reused",
               "learnts kept", "conflicts"]
    rows: List[List[object]] = []
    for bound in result.per_bound:
        stats = bound.stats
        rows.append([
            bound.k,
            bound.status.name,
            f"{bound.seconds * 1e3:.1f}",
            f"{bound.cumulative_seconds * 1e3:.1f}",
            stats.get("clauses_reused", "-"),
            stats.get("learnts_retained", "-"),
            stats.get("solver_conflicts",
                      stats.get("sat_conflicts", "-")),
        ])
    table = format_table(headers, rows)
    if result.hit is not None:
        footer = (f"shortest counterexample: k={result.shortest_k} "
                  f"after {result.time_to_hit * 1e3:.1f} ms")
    else:
        footer = f"no counterexample within k<={result.max_k} " \
                 f"({result.status.name})"
    return f"{table}\n{footer} — total {result.seconds * 1e3:.1f} ms"


def format_serve_stats(stats: Mapping[str, object]) -> str:
    """Render the serve daemon's ``stats`` endpoint as a report.

    ``stats`` is the dict returned by
    :meth:`repro.serve.client.ServeClient.stats`: uptime plus live
    gauges, the lifetime job counters, and the cache / pool
    attribution.
    """
    lines = [
        f"uptime: {float(stats['uptime_seconds']):.1f} s   "
        f"workers: {stats['workers']}   clients: {stats['clients']}",
        f"queue depth: {stats['queue_depth']}   "
        f"inflight: {stats['inflight']}",
    ]
    jobs = stats.get("jobs") or {}
    if jobs:
        headers = ["counter", "count"]
        rows = [[name, jobs[name]] for name in sorted(jobs)]
        lines.append(format_table(headers, rows))
    cache = stats.get("cache") or {}
    if cache:
        lines.append(f"cache: {cache['hits']} hits / "
                     f"{cache['misses']} misses / "
                     f"{cache['stores']} stores "
                     f"({cache['entries']} entries)")
    pool = stats.get("pool") or {}
    if pool:
        lines.append(f"pool: {pool['cancelled']} cancelled, "
                     f"{pool['respawns']} respawns")
    return "\n".join(lines)


def format_growth(table: Mapping[str, Sequence[Mapping[str, int]]],
                  metric: str = "literals") -> str:
    """The E2 growth series: one row per bound, one column per method."""
    bounds: List[int] = []
    for series in table.values():
        for row in series:
            if row["k"] not in bounds:
                bounds.append(row["k"])
    bounds.sort()
    methods = list(table)
    headers = ["k"] + [f"{m} {metric}" for m in methods]
    rows = []
    for k in bounds:
        row: List[object] = [k]
        for method in methods:
            match = [r for r in table[method] if r["k"] == k]
            row.append(match[0].get(metric, "-") if match else "-")
        rows.append(row)
    return format_table(headers, rows)
