"""Budgeted experiment runner.

Runs (instance × method) cells under per-instance resource budgets —
the laptop-scale analogue of the paper's "300 seconds time limit and
1 GB memory limit" — and records outcome, wall time, CPU time and the
method's size/effort statistics.  Results feed the report tables of
:mod:`repro.harness.report` for experiments E1–E8 (the full benchmark
set under ``benchmarks/`` and the ``repro experiment`` subcommand).

``run_matrix`` runs serially by default; pass ``jobs=N`` to shard the
matrix across a :class:`repro.portfolio.scheduler.BatchScheduler`
worker pool (optionally with an on-disk result cache) — the result
list is identical to the serial one, in the same order.

``run_matrix(mode="sweep")`` replaces the single exact-k query per
cell with a full bound sweep 0..k (:meth:`repro.bmc.session.BmcSession.sweep`):
the cell's status is the sweep verdict, and the stats record the
number of bounds checked and the wall time to the shortest
counterexample — the evaluation axis the incremental driver exists
for.

``run_matrix(mode="properties")`` (or :func:`run_property_matrix`
directly) adds the *property* axis: every named property of each
instance is checked at the instance's bound through one
shared-unrolling session (:meth:`BmcSession.check_properties`), or —
with ``shared=False`` — through one throwaway session per property,
the sequential baseline the multi-property benchmark compares against.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..bmc.backend import fan_out_options
from ..bmc.metrics import measure_time
from ..bmc.session import BmcSession
from ..models.suite import Instance
from ..sat.types import Budget, SolveResult
from ..spec.checker import PropertyResult
from ..spec.property import Verdict

__all__ = ["CellResult", "PropertyCellResult", "run_cell",
           "run_sweep_cell", "run_property_cell", "run_matrix",
           "run_property_matrix", "default_budget", "solved_counts",
           "verdict_counts"]


def default_budget(scale: float = 1.0) -> Budget:
    """The per-instance budget used by the headline experiment E1.

    Deterministic limits (conflicts / clause-database literals) make the
    benches reproducible; the wall-clock cap keeps worst cases bounded.
    """
    return Budget(max_conflicts=int(20_000 * scale),
                  max_seconds=5.0 * scale,
                  max_literals=int(2_000_000 * scale))


class CellResult:
    """Outcome of one (instance, method) run.

    ``seconds`` is wall-clock; ``cpu_seconds`` is the process-CPU time
    of whoever solved the cell (the worker process, in a parallel run).
    ``worker`` attributes the cell to a pool worker (``"w0"``, ...),
    ``"cache"`` for a result-cache hit, or None for a serial run.
    """

    def __init__(self, instance: Instance, method: str,
                 status: SolveResult, seconds: float, correct: Optional[bool],
                 stats: Dict[str, int],
                 cpu_seconds: float = 0.0,
                 worker: Optional[str] = None) -> None:
        self.instance = instance
        self.method = method
        self.status = status
        self.seconds = seconds
        self.correct = correct        # None when ground truth is unknown
        self.stats = stats
        self.cpu_seconds = cpu_seconds
        self.worker = worker

    @property
    def solved(self) -> bool:
        """Solved = produced a definite answer within budget, and that
        answer matches the ground truth when one is known."""
        if self.status is SolveResult.UNKNOWN:
            return False
        return self.correct is not False

    def __repr__(self) -> str:  # pragma: no cover
        who = f", worker={self.worker}" if self.worker else ""
        return (f"CellResult({self.instance.name!r}, {self.method!r}, "
                f"{self.status.name}, {self.seconds * 1e3:.0f} ms{who})")


def run_cell(instance: Instance, method: str,
             budget: Budget | None = None,
             semantics: str = "exact",
             reduce: object = "off",
             **options) -> CellResult:
    """Run one instance with one method under the budget.

    ``method`` may name any registered backend — built-in or custom —
    and ``**options`` are validated by that backend's typed options
    class (unknown keys raise).  ``reduce`` is the session's
    model-reduction knob (``"off"`` / ``"auto"`` / a
    :class:`repro.reduce.Pipeline`).
    """
    with measure_time() as timing:
        with BmcSession(instance.system,
                        properties={"target": instance.final},
                        reduce=reduce) as session:
            result = session.check(instance.k, method=method,
                                   semantics=semantics, budget=budget,
                                   **options)
    correct: Optional[bool] = None
    if instance.expected is not None and \
            result.status is not SolveResult.UNKNOWN:
        want = SolveResult.SAT if instance.expected else SolveResult.UNSAT
        correct = result.status is want
    stats = dict(result.stats)
    if result.proved:
        # Same marker the parallel scheduler records, so downstream
        # reporting treats serial and sharded cells alike.
        stats["proved"] = True
    return CellResult(instance, method, result.status,
                      timing.wall_seconds, correct, stats,
                      cpu_seconds=timing.cpu_seconds)


def run_sweep_cell(instance: Instance, method: str,
                   budget: Budget | None = None,
                   reduce: object = "off",
                   **options) -> CellResult:
    """Sweep bounds 0..instance.k with one method; one CellResult.

    Status is the sweep verdict (SAT = shortest counterexample found).
    Correctness is judged by witness replay for SAT; for UNSAT the only
    checkable claim is that an expected-SAT instance must be hit by its
    own bound (exact-k reachability implies the sweep cannot miss it).
    """
    with measure_time() as timing:
        with BmcSession(instance.system,
                        properties={"target": instance.final},
                        reduce=reduce) as session:
            swept = session.sweep(instance.k, method=method,
                                  budget=budget, **options)
    correct: Optional[bool] = None
    if swept.status is SolveResult.SAT:
        hit = swept.hit
        if hit.trace is not None:
            correct = (hit.trace.is_valid(instance.system, instance.final)
                       and hit.trace.length == hit.k)
    elif swept.status is SolveResult.UNSAT and instance.expected is True:
        correct = False
    stats: Dict[str, int] = {
        "bounds_checked": len(swept.per_bound),
        "max_k": swept.max_k,
    }
    if swept.shortest_k is not None:
        stats["shortest_k"] = swept.shortest_k
        stats["time_to_cex_ms"] = int(swept.time_to_hit * 1e3)
    if swept.per_bound:
        stats.update({f"last_{key}": value
                      for key, value in swept.per_bound[-1].stats.items()})
    return CellResult(instance, method, swept.status, timing.wall_seconds,
                      correct, stats, cpu_seconds=timing.cpu_seconds)


class PropertyCellResult:
    """Outcome of one (instance, property) check.

    Wraps the checker's :class:`~repro.spec.checker.PropertyResult`
    with the harness bookkeeping (instance provenance, wall/CPU time
    of the enclosing session call).
    """

    def __init__(self, instance: Instance, result: PropertyResult,
                 seconds: float, cpu_seconds: float = 0.0) -> None:
        self.instance = instance
        self.result = result
        self.seconds = seconds
        self.cpu_seconds = cpu_seconds

    @property
    def property_name(self) -> str:
        return self.result.name

    @property
    def verdict(self) -> Verdict:
        return self.result.verdict

    def __repr__(self) -> str:  # pragma: no cover
        return (f"PropertyCellResult({self.instance.name!r}, "
                f"{self.result.name!r}, {self.verdict.name})")


def run_property_cell(instance: Instance,
                      budget: Budget | None = None,
                      shared: bool = True,
                      reduce: object = "off",
                      prover: Optional[str] = None,
                      prover_max_k: int = 64) -> List[PropertyCellResult]:
    """Check every named property of one instance at its bound.

    ``shared=True`` answers all properties over one shared unrolling
    in one session; ``shared=False`` opens a fresh session per
    property — the sequential baseline (same verdicts, re-encoded
    transition frames per property).  ``reduce`` is forwarded to the
    sessions, so ``"auto"`` groups properties by reduced cone, and
    ``prover`` pairs each property with an unbounded prover that can
    upgrade bounded UNSAT verdicts to conclusive proofs.
    """
    out: List[PropertyCellResult] = []
    if shared:
        with measure_time() as timing:
            with BmcSession(instance.system,
                            properties=instance.properties,
                            reduce=reduce, prover=prover,
                            prover_max_k=prover_max_k) as session:
                results = session.check_properties(instance.k,
                                                   budget=budget)
        per = timing.wall_seconds / max(1, len(results))
        per_cpu = timing.cpu_seconds / max(1, len(results))
        for result in results.values():
            out.append(PropertyCellResult(instance, result, per, per_cpu))
        return out
    for name, prop in instance.properties.items():
        with measure_time() as timing:
            with BmcSession(instance.system,
                            properties={name: prop},
                            reduce=reduce, prover=prover,
                            prover_max_k=prover_max_k) as session:
                result = session.check_properties(instance.k,
                                                  budget=budget)[name]
        out.append(PropertyCellResult(instance, result,
                                      timing.wall_seconds,
                                      timing.cpu_seconds))
    return out


def run_property_matrix(instances: Sequence[Instance],
                        budget: Budget | None = None,
                        shared: bool = True,
                        reduce: object = "off",
                        prover: Optional[str] = None,
                        prover_max_k: int = 64
                        ) -> List[PropertyCellResult]:
    """The (instances × properties) matrix, instance-major."""
    out: List[PropertyCellResult] = []
    for instance in instances:
        out.extend(run_property_cell(instance, budget=budget,
                                     shared=shared, reduce=reduce,
                                     prover=prover,
                                     prover_max_k=prover_max_k))
    return out


def verdict_counts(cells: Iterable[PropertyCellResult]
                   ) -> Dict[str, Dict[str, int]]:
    """Per-property-name verdict tallies across a property matrix."""
    table: Dict[str, Dict[str, int]] = {}
    for cell in cells:
        row = table.setdefault(cell.property_name, {
            "total": 0, "holds": 0, "violated": 0, "unknown": 0,
            "certified": 0})
        row["total"] += 1
        row[cell.verdict.value] += 1
        if cell.result.conclusive:
            row["certified"] += 1
    return table


def run_matrix(instances: Sequence[Instance], methods: Sequence[str],
               budget: Budget | None = None,
               semantics: str = "exact",
               method_budgets: Dict[str, Budget] | None = None,
               jobs: Optional[int] = None,
               cache=None,
               timings: Mapping[Tuple[str, str], float] | None = None,
               mode: str = "single",
               reduce: object = "off",
               prover: Optional[str] = None,
               sim_tier: bool = False,
               **options) -> List[CellResult]:
    """Run the full (instances × methods) matrix.

    ``jobs=None`` (or 1 with no cache) runs serially in-process.  With
    ``jobs=N`` the matrix is sharded across N worker processes by the
    portfolio :class:`~repro.portfolio.scheduler.BatchScheduler`;
    ``cache`` (a :class:`~repro.portfolio.cache.ResultCache` or a
    directory path) memoizes solved cells across runs, and ``timings``
    (``{(instance_name, method): seconds}`` from a previous run) tunes
    the hardest-first dispatch order.  Result order is method-major and
    identical in all modes.

    ``mode="sweep"`` runs each cell as a bound sweep 0..k via
    :func:`run_sweep_cell` (serial only: sweeps keep a live solver per
    cell, so they are not sharded or cached).

    ``mode="properties"`` checks every *named property* of each
    instance instead of the single final target, through one
    shared-unrolling session per instance
    (:func:`run_property_matrix`; serial only, ``methods`` does not
    apply — the spec engine is the incremental SAT checker — and must
    be empty or ``("spec",)``).  Returns
    :class:`PropertyCellResult` rows.

    ``**options`` are broadcast: each method takes the keys its typed
    options class accepts (e.g. ``use_cache=False`` tunes jsat while
    sat-unroll ignores it); a key no listed method accepts raises.

    ``reduce`` (``"off"`` / ``"auto"`` / a
    :class:`repro.reduce.Pipeline`) forwards the model-reduction knob
    to every cell's session; parallel (``jobs``/``cache``) runs accept
    the string forms only, because the knob travels in worker payloads
    and cache keys.

    ``sim_tier`` (default off — matrices measure solver methods) runs
    the bit-parallel random-simulation pre-solve over the pending
    cells before the worker pool starts; it forces the scheduler path
    even for ``jobs=1``, since the tier lives in
    :class:`~repro.portfolio.scheduler.BatchScheduler`.  ``"single"``
    mode only.

    ``prover`` pairs the matrix with one unbounded prover.  In
    ``"single"`` mode it adds a comparison lane (one extra prover cell
    per instance, ``within`` semantics — serial and sharded runs
    agree); in ``"properties"`` mode it is forwarded to every
    session's checker, which escalates bounded UNSAT verdicts to
    conclusive proofs per property cone.
    """
    if jobs is not None and jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if mode not in ("single", "sweep", "properties"):
        raise ValueError(f"unknown mode {mode!r}; pick 'single', "
                         f"'sweep' or 'properties'")
    if mode == "properties":
        if tuple(methods) not in ((), ("spec",)):
            raise ValueError(
                "mode='properties' checks named properties with the "
                "shared-unrolling spec engine; pass methods=() (or "
                "('spec',)), not a backend list")
        if (jobs is not None and jobs > 1) or cache is not None or options:
            raise ValueError("property mode runs serially "
                             "(no jobs/cache/backend options)")
        return run_property_matrix(instances, budget=budget,
                                   reduce=reduce, prover=prover)
    lanes = list(methods)
    if prover is not None and mode == "single":
        from ..bmc.backend import backend_class
        if not backend_class(prover).proves_unbounded:
            raise ValueError(
                f"{prover!r} is a bounded falsifier, not a prover; "
                f"list it in methods instead")
        if prover not in lanes:
            lanes.append(prover)
    per_method = fan_out_options(lanes, options)
    if mode == "sweep":
        if prover is not None:
            raise ValueError("sweep mode has no prover lane; use "
                             "mode='single' or mode='properties'")
        if (jobs is not None and jobs > 1) or cache is not None:
            raise ValueError("sweep mode runs serially (no jobs/cache)")
        method_budgets = method_budgets or {}
        out: List[CellResult] = []
        for method in methods:
            cell_budget = method_budgets.get(method, budget)
            for instance in instances:
                out.append(run_sweep_cell(instance, method, cell_budget,
                                          reduce=reduce,
                                          **per_method[method]))
        return out
    if (jobs is not None and jobs > 1) or cache is not None or sim_tier:
        from ..reduce import REDUCE_MODES
        if reduce not in REDUCE_MODES:
            raise ValueError(
                f"parallel/cached runs take reduce='auto' or 'off' "
                f"(the knob travels in worker payloads and cache "
                f"keys), got {reduce!r}")
        from ..portfolio.scheduler import BatchScheduler
        scheduler = BatchScheduler(jobs=jobs or 1, cache=cache,
                                   timings=timings)
        return scheduler.run(instances, methods, budget=budget,
                             semantics=semantics,
                             method_budgets=method_budgets,
                             reduce=reduce, prover=prover,
                             sim_tier=sim_tier, **options)

    method_budgets = method_budgets or {}
    out: List[CellResult] = []
    for method in lanes:
        cell_budget = method_budgets.get(method, budget)
        cell_semantics = "within" if method == prover else semantics
        for instance in instances:
            out.append(run_cell(instance, method, cell_budget,
                                cell_semantics,
                                reduce=reduce, **per_method[method]))
    return out


def solved_counts(results: Iterable[CellResult]) -> Dict[str, Dict[str, int]]:
    """Aggregate per-method solved/total counts (the E1 headline)."""
    table: Dict[str, Dict[str, int]] = {}
    for cell in results:
        row = table.setdefault(cell.method, {
            "solved": 0, "total": 0, "sat": 0, "unsat": 0, "unknown": 0,
            "wrong": 0})
        row["total"] += 1
        if cell.status is SolveResult.UNKNOWN:
            row["unknown"] += 1
        elif cell.correct is False:
            row["wrong"] += 1
        else:
            row["solved"] += 1
            if cell.status is SolveResult.SAT:
                row["sat"] += 1
            else:
                row["unsat"] += 1
    return table
