"""Budgeted experiment runner.

Runs (instance × method) cells under per-instance resource budgets —
the laptop-scale analogue of the paper's "300 seconds time limit and
1 GB memory limit" — and records outcome, wall time and the method's
size/effort statistics.  Results feed the report tables of
:mod:`repro.harness.report`.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence

from ..bmc.engine import check_reachability
from ..models.suite import Instance
from ..sat.types import Budget, SolveResult

__all__ = ["CellResult", "run_cell", "run_matrix", "default_budget",
           "solved_counts"]


def default_budget(scale: float = 1.0) -> Budget:
    """The per-instance budget used by the headline experiment E1.

    Deterministic limits (conflicts / clause-database literals) make the
    benches reproducible; the wall-clock cap keeps worst cases bounded.
    """
    return Budget(max_conflicts=int(20_000 * scale),
                  max_seconds=5.0 * scale,
                  max_literals=int(2_000_000 * scale))


class CellResult:
    """Outcome of one (instance, method) run."""

    def __init__(self, instance: Instance, method: str,
                 status: SolveResult, seconds: float, correct: Optional[bool],
                 stats: Dict[str, int]) -> None:
        self.instance = instance
        self.method = method
        self.status = status
        self.seconds = seconds
        self.correct = correct        # None when ground truth is unknown
        self.stats = stats

    @property
    def solved(self) -> bool:
        """Solved = produced a definite answer within budget, and that
        answer matches the ground truth when one is known."""
        if self.status is SolveResult.UNKNOWN:
            return False
        return self.correct is not False

    def __repr__(self) -> str:  # pragma: no cover
        return (f"CellResult({self.instance.name!r}, {self.method!r}, "
                f"{self.status.name}, {self.seconds * 1e3:.0f} ms)")


def run_cell(instance: Instance, method: str,
             budget: Budget | None = None,
             semantics: str = "exact",
             **options) -> CellResult:
    """Run one instance with one method under the budget."""
    start = time.perf_counter()
    result = check_reachability(instance.system, instance.final, instance.k,
                                method, semantics=semantics, budget=budget,
                                **options)
    elapsed = time.perf_counter() - start
    correct: Optional[bool] = None
    if instance.expected is not None and \
            result.status is not SolveResult.UNKNOWN:
        want = SolveResult.SAT if instance.expected else SolveResult.UNSAT
        correct = result.status is want
    return CellResult(instance, method, result.status, elapsed, correct,
                      result.stats)


def run_matrix(instances: Sequence[Instance], methods: Sequence[str],
               budget: Budget | None = None,
               semantics: str = "exact",
               method_budgets: Dict[str, Budget] | None = None,
               **options) -> List[CellResult]:
    """Run the full (instances × methods) matrix."""
    method_budgets = method_budgets or {}
    out: List[CellResult] = []
    for method in methods:
        cell_budget = method_budgets.get(method, budget)
        for instance in instances:
            out.append(run_cell(instance, method, cell_budget, semantics,
                                **options))
    return out


def solved_counts(results: Iterable[CellResult]) -> Dict[str, Dict[str, int]]:
    """Aggregate per-method solved/total counts (the E1 headline)."""
    table: Dict[str, Dict[str, int]] = {}
    for cell in results:
        row = table.setdefault(cell.method, {
            "solved": 0, "total": 0, "sat": 0, "unsat": 0, "unknown": 0,
            "wrong": 0})
        row["total"] += 1
        if cell.status is SolveResult.UNKNOWN:
            row["unknown"] += 1
        elif cell.correct is False:
            row["wrong"] += 1
        else:
            row["solved"] += 1
            if cell.status is SolveResult.SAT:
                row["sat"] += 1
            else:
                row["unsat"] += 1
    return table
