"""repro — Space-Efficient Bounded Model Checking.

A reproduction of Katz, Hanna & Dershowitz, "Space-Efficient Bounded
Model Checking" (DATE 2005): QBF formulations of bounded reachability
that avoid unrolling the transition relation, and the special-purpose
jSAT decision procedure, together with every substrate they need (CDCL
SAT solver, QDPLL QBF solver, transition-system modelling, benchmark
designs and the evaluation harness).

Quickstart
----------
>>> from repro.models import counter
>>> from repro.bmc import BmcSession
>>> from repro.spec import Invariant, Reachable
>>> system, final, depth = counter.make(width=4, target=9)
>>> with BmcSession(system, properties={"hit": Reachable(final),
...                                     "safe": Invariant(~final)}) as s:
...     results = s.check_properties(9)
>>> results["hit"].verdict.name, results["safe"].verdict.name
('HOLDS', 'VIOLATED')
"""

# Kept in sync with pyproject.toml; the function-API deprecation shims
# (repro.bmc.engine) are documented against this number.
__version__ = "0.9.0"
